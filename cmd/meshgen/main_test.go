package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"meshlab"
)

func TestRunQuickJSONL(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fleet.jsonl")
	var buf strings.Builder
	if err := run([]string{"-seed", "3", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "probe sets") {
		t.Fatalf("summary missing: %q", buf.String())
	}
	fleet, err := meshlab.LoadFleet(out)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Meta.Seed != 3 || fleet.NumProbeSets() == 0 {
		t.Fatal("written dataset wrong")
	}
}

func TestRunBinaryOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fleet.bin")
	if err := run([]string{"-seed", "4", "-out", out, "-no-clients"}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	fleet, err := meshlab.LoadFleet(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Clients) != 0 {
		t.Fatal("-no-clients ignored")
	}
	// Binary magic at the head (the current format version).
	b, _ := os.ReadFile(out)
	if string(b[:4]) != "MLF2" {
		t.Fatalf(".bin output is not binary: %q", b[:4])
	}
}

// TestRunFlatSamples: -flat-samples appends the §4 sample section to a
// .bin output and is rejected for JSONL paths.
func TestRunFlatSamples(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fleet.bin")
	if err := run([]string{"-seed", "4", "-out", out, "-flat-samples"}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	_, samples, err := meshlab.LoadFleetSamples(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("-flat-samples output carries no sample section")
	}
	if err := run([]string{"-out", "f.jsonl", "-flat-samples"}, &strings.Builder{}); err == nil {
		t.Fatal("-flat-samples with a JSONL output should error")
	}
}

func TestRunOverrides(t *testing.T) {
	out := filepath.Join(t.TempDir(), "f.jsonl")
	if err := run([]string{"-seed", "5", "-out", out, "-probe-hours", "1", "-interval", "600"}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	fleet, err := meshlab.LoadFleet(out)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Meta.ProbeDuration != 3600 || fleet.Meta.ProbeInterval != 600 {
		t.Fatalf("overrides not applied: %+v", fleet.Meta)
	}
}

func TestRunRejectsBadScale(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}, &strings.Builder{}); err == nil {
		t.Fatal("bad scale should error")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, &strings.Builder{}); err == nil {
		t.Fatal("unknown flag should error")
	}
}

// TestRunDatasetCache checks meshgen's -dataset flag: the second run
// loads the cache instead of re-synthesizing and still writes -out.
func TestRunDatasetCache(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache.bin")
	out := filepath.Join(dir, "fleet.jsonl")
	if err := run([]string{"-seed", "3", "-dataset", cache, "-out", out}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cache); err != nil {
		t.Fatalf("cache not written: %v", err)
	}
	var warm strings.Builder
	out2 := filepath.Join(dir, "fleet2.jsonl")
	if err := run([]string{"-seed", "3", "-dataset", cache, "-out", out2}, &warm); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm.String(), "loaded from cache") {
		t.Fatalf("warm run did not report a cache load: %q", warm.String())
	}
	a, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "\"seed\":3") || !bytes.Equal(a, b) {
		t.Fatal("cached run wrote a different dataset")
	}
	// A different seed against the same cache must regenerate.
	var cold strings.Builder
	if err := run([]string{"-seed", "4", "-dataset", cache, "-out", out2}, &cold); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(cold.String(), "loaded from cache") {
		t.Fatal("seed mismatch should not load the cache")
	}
	f, err := meshlab.LoadFleet(cache)
	if err != nil {
		t.Fatal(err)
	}
	if f.Meta.Seed != 4 {
		t.Fatalf("cache holds seed %d after regeneration, want 4", f.Meta.Seed)
	}
}

// TestRunWorkersIdentical pins the CLI's -workers flag to byte-identical
// output.
func TestRunWorkersIdentical(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.bin")
	b := filepath.Join(dir, "b.bin")
	if err := run([]string{"-seed", "3", "-workers", "1", "-out", a}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-seed", "3", "-workers", "4", "-out", b}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	ab, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatal("-workers changed the generated dataset bytes")
	}
}
