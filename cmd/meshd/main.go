// Command meshd serves the analysis suite as a long-running HTTP
// service: registered datasets warm through the bounded streaming
// pipeline in the background, then report, experiment, §4-section, and
// network queries resolve against immutable in-memory snapshots —
// byte-identical to what meshreport and meshanalyze print for the same
// dataset. See docs/MESHD.md for the HTTP API.
//
// Usage:
//
//	meshd -addr :8080 -dir data -register quick
//	meshd -addr 127.0.0.1:8080 -dir data -register campus=fleet.bin,quick
//
// -register seeds the server at startup with a comma-separated list of
// entries, each NAME=SOURCE or bare SOURCE: a SOURCE ending in .bin is
// a dataset file path, anything else is a scenario (a built-in name or
// a spec-file path; a bare scenario entry registers under the
// scenario's own name). Additional datasets register at runtime via
// POST /v1/datasets.
//
// -query-timeout bounds each data query end to end (a saturated worker
// pool answers 503 + Retry-After within it); -warm-retries controls how
// many times a transiently-failed warm re-runs with backoff before the
// dataset is marked failed; -dataset-ttl and -max-datasets bound how
// many warmed snapshots a long-lived process retains (TTL and LRU
// eviction). See docs/MESHD.md.
//
// SIGINT/SIGTERM shut down gracefully: the listener stops accepting,
// in-flight queries drain, then background warms drain (a warm sitting
// in a retry backoff aborts immediately); exceeding -drain hard-cancels
// in-flight warm streams and exits 1.
//
// Exit codes: 0 clean shutdown, 1 runtime failure, 2 usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"meshlab/internal/meshd"
)

// usageError marks an error as the caller's invocation being wrong,
// mapping it to exit code 2 (the CLI-wide contract).
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

// exitCode maps errors to the documented contract: 2 usage, 1 anything
// else (the serving loop has no corrupt/transient classification — a
// bad dataset fails its warm, not the process).
func exitCode(err error) int {
	var u usageError
	if errors.As(err, &u) || errors.Is(err, flag.ErrHelp) {
		return 2
	}
	return 1
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "meshd: %v\n", err)
		os.Exit(exitCode(err))
	}
}

// registerAll seeds the server from the -register list.
func registerAll(s *meshd.Server, list string, stdout io.Writer) error {
	for _, entry := range strings.Split(list, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, source, named := strings.Cut(entry, "=")
		if !named {
			name, source = "", entry
		}
		if strings.HasSuffix(source, ".bin") {
			if !named {
				return usagef("-register entry %q: a dataset file needs a name (NAME=%s)", entry, source)
			}
			if err := s.RegisterPath(name, source); err != nil {
				return fmt.Errorf("-register %s: %w", entry, err)
			}
		} else {
			var err error
			if name, err = s.RegisterScenario(name, source); err != nil {
				return fmt.Errorf("-register %s: %w", entry, err)
			}
		}
		fmt.Fprintf(stdout, "meshd: registered %s (warming)\n", name)
	}
	return nil
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("meshd", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "address to listen on")
		dir      = fs.String("dir", "", "directory where scenario registrations synthesize their dataset files (required for scenario sources)")
		workers  = fs.Int("workers", 0, "total worker slots across warms and queries (0: all cores)")
		reserved = fs.Int("reserved", 0, "worker slots warms may never hold, kept free for queries (0: a quarter of the budget)")
		register = fs.String("register", "", "datasets to register at startup: comma-separated NAME=SOURCE or SOURCE entries (.bin file paths or scenario names/spec paths)")
		drain    = fs.Duration("drain", 30*time.Second, "graceful-shutdown budget for draining in-flight queries and warms")

		queryTimeout = fs.Duration("query-timeout", 30*time.Second, "per-query deadline across worker-slot wait and rendering; a saturated pool answers 503 within it (0: no deadline)")
		warmRetries  = fs.Int("warm-retries", 3, "retries for a transiently-failed warm before the dataset is marked failed (-1: never retry; corrupt data never retries)")
		datasetTTL   = fs.Duration("dataset-ttl", 0, "evict a ready dataset unqueried for this long, releasing its snapshot (0: keep forever)")
		maxDatasets  = fs.Int("max-datasets", 0, "cap on registered datasets; past it the least-recently-queried ready dataset is evicted (0: unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	if fs.NArg() > 0 {
		return usagef("unexpected arguments %q (datasets register via -register or POST /v1/datasets)", fs.Args())
	}

	if *dir != "" {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			return fmt.Errorf("-dir: %w", err)
		}
	}
	s := meshd.New(meshd.Config{
		Dir: *dir, Workers: *workers, Reserved: *reserved,
		QueryTimeout: *queryTimeout,
		WarmRetries:  *warmRetries,
		MaxDatasets:  *maxDatasets,
		DatasetTTL:   *datasetTTL,
	})
	if err := registerAll(s, *register, stdout); err != nil {
		if errors.Is(err, meshd.ErrBadRequest) {
			return usageError{err}
		}
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	fmt.Fprintf(stdout, "meshd: serving on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err // listener died before any signal
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(stdout, "meshd: shutting down")

	// Drain in-flight queries first, then background warms, both under
	// the same budget.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		s.Shutdown(drainCtx)
		return fmt.Errorf("draining queries: %w", err)
	}
	if err := s.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("draining warms: %w", err)
	}
	return nil
}
