// shutdown_test.go drives the real binary through the shutdown paths
// the exit-code contract promises: SIGINT during a retrying warm drains
// cleanly (exit 0, the backoff sleep aborts immediately), and a warm
// that outlives the drain budget is hard-canceled with the failure
// reported (exit 1).

package main

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildMeshd compiles the binary once per test invocation.
func buildMeshd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "meshd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startMeshd launches the binary and blocks until it reports the
// listener is up, returning the running command and its stderr buffer.
func startMeshd(t *testing.T, bin string, args ...string) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })
	guard := time.AfterFunc(60*time.Second, func() { cmd.Process.Kill() })
	t.Cleanup(func() { guard.Stop() })
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if strings.Contains(sc.Text(), "serving on") {
			go io.Copy(io.Discard, stdout) // keep draining so the child never blocks on its pipe
			return cmd, &stderr
		}
	}
	t.Fatalf("binary never reported serving (stderr: %s)", stderr.String())
	return nil, nil
}

// waitExit waits for the process, bounded.
func waitExit(t *testing.T, cmd *exec.Cmd) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		t.Fatal("binary never exited")
		return nil
	}
}

// TestMeshdBinarySigintDuringRetryingWarm: a dataset path that is
// actually a directory makes every warm attempt fail with a transient
// read error (EISDIR), so the warm loops in retry backoff forever.
// SIGINT mid-retry must still exit 0 — the backoff sleep aborts at
// shutdown instead of holding the drain hostage.
func TestMeshdBinarySigintDuringRetryingWarm(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping binary shutdown test")
	}
	bin := buildMeshd(t)
	dir := t.TempDir()
	// A directory named like a dataset: open succeeds, the first read
	// fails EISDIR — classified transient, so the warm retries.
	if err := os.Mkdir(filepath.Join(dir, "stuck.bin"), 0o755); err != nil {
		t.Fatal(err)
	}
	cmd, stderr := startMeshd(t, bin,
		"-addr", "127.0.0.1:0",
		"-register", "s="+filepath.Join(dir, "stuck.bin"),
		"-warm-retries", "1000",
		"-drain", "30s",
	)
	// Let the first attempt fail and the warm settle into its backoff.
	time.Sleep(400 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := waitExit(t, cmd); err != nil {
		t.Fatalf("SIGINT during a retrying warm exited non-zero: %v\nstderr: %s", err, stderr.String())
	}
}

// TestMeshdBinaryDrainBudgetExceeded: a warm wedged in an uncancelable
// open (a FIFO with no writer) cannot drain; exceeding -drain must
// report the failed drain and exit 1 instead of hanging forever.
func TestMeshdBinaryDrainBudgetExceeded(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping binary shutdown test")
	}
	if runtime.GOOS != "linux" && runtime.GOOS != "darwin" {
		t.Skip("needs FIFO open semantics")
	}
	bin := buildMeshd(t)
	dir := t.TempDir()
	fifo := filepath.Join(dir, "fifo.bin")
	if err := syscall.Mkfifo(fifo, 0o600); err != nil {
		t.Fatal(err)
	}
	cmd, stderr := startMeshd(t, bin,
		"-addr", "127.0.0.1:0",
		"-register", "f="+fifo,
		"-drain", "300ms",
	)
	time.Sleep(100 * time.Millisecond) // let the warm park in its open
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err := waitExit(t, cmd)
	ee := new(exec.ExitError)
	if !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Fatalf("exceeded drain budget exited %v, want exit 1\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "draining warms") {
		t.Fatalf("stderr does not name the failed drain: %s", stderr.String())
	}
}
