package main

import (
	"errors"
	"flag"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExitCodeContract pins the CLI-wide exit-code mapping: usage
// errors (including flag-parse failures) are 2, everything else 1.
func TestExitCodeContract(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{usagef("bad invocation"), 2},
		{usageError{errors.New("wrapped")}, 2},
		{flag.ErrHelp, 2},
		{errors.New("runtime failure"), 1},
	}
	for _, c := range cases {
		if got := exitCode(c.err); got != c.want {
			t.Errorf("exitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestRunUsageErrors drives run() with bad invocations and checks they
// classify as usage errors without starting a listener.
func TestRunUsageErrors(t *testing.T) {
	var u usageError
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"stray-positional"},
		{"-register", "fleet.bin"}, // a .bin source needs a name
		{"-register", "nameless.bin", "-dir", t.TempDir()},
		{"-register", "no-such-scenario", "-dir", t.TempDir()},
	} {
		err := run(args, io.Discard)
		if err == nil || !errors.As(err, &u) {
			t.Errorf("run(%q) = %v, want a usage error", args, err)
		}
	}
}

// TestMeshdBinarySmoke builds the real binary and pins its exit-code
// contract (usage → 2, runtime failure → 1). The full serve/poll/query
// loop runs in the CI smoke job and in internal/meshd's HTTP tests.
func TestMeshdBinarySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping binary smoke test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "meshd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// A usage error from the binary must exit 2 (the regression the
	// sibling CLIs also pin).
	cmd := exec.Command(bin, "-no-such-flag")
	if err := cmd.Run(); err == nil {
		t.Fatal("bad flag: expected a non-zero exit")
	} else if ee := new(exec.ExitError); !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Fatalf("bad flag: %v, want exit 2", err)
	}
	cmd = exec.Command(bin, "-register", "nameless.bin", "-dir", dir)
	if err := cmd.Run(); err == nil {
		t.Fatal("nameless .bin: expected a non-zero exit")
	} else if ee := new(exec.ExitError); !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Fatalf("nameless .bin: %v, want exit 2", err)
	}

	// A listen failure is a runtime error: exit 1.
	cmd = exec.Command(bin, "-addr", "256.256.256.256:1")
	if err := cmd.Run(); err == nil {
		t.Fatal("bad addr: expected a non-zero exit")
	} else if ee := new(exec.ExitError); !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Fatalf("bad addr: %v, want exit 1", err)
	}
}
