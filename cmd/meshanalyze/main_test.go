package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"meshlab"
)

func TestList(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig3.1", "fig5.1", "fig7.5", "ext6.mac"} {
		if !strings.Contains(buf.String(), id) {
			t.Fatalf("-list output missing %s", id)
		}
	}
}

func TestSingleExperimentInMemory(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-seed", "11", "-exp", "fig6.1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig6.1") || !strings.Contains(buf.String(), "1M") {
		t.Fatalf("experiment output wrong:\n%s", buf.String())
	}
}

func TestFromDatasetWithPlot(t *testing.T) {
	fleet, err := meshlab.GenerateFleet(meshlab.QuickOptions(12))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "f.bin")
	if err := meshlab.SaveFleet(path, fleet); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"-data", path, "-exp", "fig5.2", "-plot"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fwd/rev delivery ratio") {
		t.Fatalf("plot missing:\n%s", buf.String())
	}
}

func TestPlotFallback(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-seed", "13", "-exp", "tab4.1", "-plot"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no plot for this experiment") {
		t.Fatal("missing plot fallback message")
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-seed", "14", "-exp", "fig99.9"}, &strings.Builder{}); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestMissingDataFile(t *testing.T) {
	if err := run([]string{"-data", "/nonexistent/fleet.jsonl"}, &strings.Builder{}); err == nil {
		t.Fatal("missing dataset should error")
	}
}

// TestSec4StreamsSamples: the -sec4 mode reproduces a §4 table
// byte-identically to the full in-memory analysis, from both a
// sample-carrying and a plain binary dataset.
func TestSec4StreamsSamples(t *testing.T) {
	fleet, err := meshlab.GenerateFleet(meshlab.QuickOptions(15))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	sampled := filepath.Join(dir, "sampled.bin")
	if err := meshlab.SaveFleetWithSamples(sampled, fleet); err != nil {
		t.Fatal(err)
	}
	plain := filepath.Join(dir, "plain.bin")
	if err := meshlab.SaveFleet(plain, fleet); err != nil {
		t.Fatal(err)
	}

	var want strings.Builder
	res, err := meshlab.NewAnalysis(fleet).Run("fig4.2")
	if err != nil {
		t.Fatal(err)
	}
	want.WriteString(res.Format())
	want.WriteString("\n")

	for _, path := range []string{sampled, plain} {
		var got strings.Builder
		if err := run([]string{"-data", path, "-sec4", "-exp", "fig4.2"}, &got); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if got.String() != want.String() {
			t.Fatalf("%s: -sec4 output diverges from the in-memory analysis:\n%s", path, got.String())
		}
	}

	// -sec4 -exp all runs the whole sample-only population.
	var all strings.Builder
	if err := run([]string{"-data", sampled, "-sec4"}, &all); err != nil {
		t.Fatal(err)
	}
	for _, id := range meshlab.SampleExperimentIDs() {
		if !strings.Contains(all.String(), id) {
			t.Fatalf("-sec4 all output missing %s", id)
		}
	}
}

// TestSec4Errors: -sec4 refuses fleet-needing experiments and
// non-streamable datasets with actionable messages instead of silently
// regenerating.
func TestSec4Errors(t *testing.T) {
	if err := run([]string{"-sec4"}, &strings.Builder{}); err == nil {
		t.Fatal("-sec4 without -data should error")
	}
	fleet, err := meshlab.GenerateFleet(meshlab.QuickOptions(16))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "f.bin")
	if err := meshlab.SaveFleet(bin, fleet); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-data", bin, "-sec4", "-exp", "fig5.1"}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "needs the full fleet") {
		t.Fatalf("fleet experiment under -sec4: got %v", err)
	}

	jsonl := filepath.Join(dir, "f.jsonl")
	if err := meshlab.SaveFleet(jsonl, fleet); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-data", jsonl, "-sec4"}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "flat-samples") {
		t.Fatalf("JSONL under -sec4 should point at meshgen -flat-samples, got %v", err)
	}
}

func TestShardedRunMatchesSinglePass(t *testing.T) {
	fleet, err := meshlab.GenerateFleet(meshlab.QuickOptions(17))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "f.bin")
	if err := meshlab.SaveFleetWithSamples(path, fleet); err != nil {
		t.Fatal(err)
	}
	var whole, sharded strings.Builder
	if err := run([]string{"-data", path, "-exp", "fig6.1"}, &whole); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", path, "-exp", "fig6.1", "-shards", "3"}, &sharded); err != nil {
		t.Fatal(err)
	}
	if whole.String() != sharded.String() {
		t.Fatalf("sharded output diverges:\n--- whole ---\n%s\n--- sharded ---\n%s", whole.String(), sharded.String())
	}
}

func TestExitCodes(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-shards", "2"}, &buf); exitCode(err) != 2 {
		t.Fatalf("missing -data: exit %d (%v), want 2", exitCode(err), err)
	}
	if err := run([]string{"-bogus-flag"}, &buf); exitCode(err) != 2 {
		t.Fatalf("bad flag: exit %d (%v), want 2", exitCode(err), err)
	}
	if err := run([]string{"-shards", "2", "-sec4", "-data", "x.bin"}, &buf); exitCode(err) != 2 {
		t.Fatalf("-shards with -sec4: exit %d (%v), want 2", exitCode(err), err)
	}
	if exitCode(nil) != 0 {
		t.Fatal("nil error must exit 0")
	}
	// A truncated MLF2 file is corrupt input: exit 3 in sharded mode.
	fleet, err := meshlab.GenerateFleet(meshlab.QuickOptions(18))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "f.bin")
	if err := meshlab.SaveFleetWithSamples(path, fleet); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", path, "-shards", "2"}, &buf); exitCode(err) != 3 {
		t.Fatalf("truncated input: exit %d (%v), want 3", exitCode(err), err)
	}
}

// TestScenarioInMemory: -scenario generates the declared fleet in memory
// and runs the requested experiment over it.
func TestScenarioInMemory(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "tiny.json")
	if err := os.WriteFile(spec, []byte(`{
		"version": 1, "name": "tiny", "seed": 9,
		"fleet": {
			"networks": 2,
			"env_mix": {"indoor": 2},
			"band_mix": {"bg": 2},
			"size": {"min": 3, "max": 6, "log_mean": 1.2, "log_std": 0.3}
		},
		"probe": {"duration_s": 900, "interval_s": 300}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"-scenario", spec, "-exp", "fig3.1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig3.1") {
		t.Fatalf("scenario run produced no fig3.1 output:\n%s", buf.String())
	}
}

// TestScenarioUsageErrors: -scenario excludes the file-driven modes, and
// unknown names are usage errors.
func TestScenarioUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-scenario", "quick", "-data", "x.bin"},
		{"-scenario", "quick", "-sec4"},
		{"-scenario", "quick", "-shards", "2"},
		{"-scenario", "quick", "-checkpoint", "ck"},
	} {
		err := run(args, &strings.Builder{})
		if err == nil || exitCode(err) != 2 {
			t.Fatalf("%v: want usage error (exit 2), got %v", args, err)
		}
	}
	err := run([]string{"-scenario", "galactic", "-exp", "fig3.1"}, &strings.Builder{})
	if err == nil || exitCode(err) != 2 || !strings.Contains(err.Error(), "no built-in named") {
		t.Fatalf("unknown scenario: %v", err)
	}
}
