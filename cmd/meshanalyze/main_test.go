package main

import (
	"path/filepath"
	"strings"
	"testing"

	"meshlab"
)

func TestList(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig3.1", "fig5.1", "fig7.5", "ext6.mac"} {
		if !strings.Contains(buf.String(), id) {
			t.Fatalf("-list output missing %s", id)
		}
	}
}

func TestSingleExperimentInMemory(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-seed", "11", "-exp", "fig6.1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig6.1") || !strings.Contains(buf.String(), "1M") {
		t.Fatalf("experiment output wrong:\n%s", buf.String())
	}
}

func TestFromDatasetWithPlot(t *testing.T) {
	fleet, err := meshlab.GenerateFleet(meshlab.QuickOptions(12))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "f.bin")
	if err := meshlab.SaveFleet(path, fleet); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"-data", path, "-exp", "fig5.2", "-plot"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fwd/rev delivery ratio") {
		t.Fatalf("plot missing:\n%s", buf.String())
	}
}

func TestPlotFallback(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-seed", "13", "-exp", "tab4.1", "-plot"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no plot for this experiment") {
		t.Fatal("missing plot fallback message")
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-seed", "14", "-exp", "fig99.9"}, &strings.Builder{}); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestMissingDataFile(t *testing.T) {
	if err := run([]string{"-data", "/nonexistent/fleet.jsonl"}, &strings.Builder{}); err == nil {
		t.Fatal("missing dataset should error")
	}
}
