// Command meshanalyze runs one (or all) of the thesis's experiments
// against a dataset and prints the regenerated table, optionally with an
// ASCII rendering of the figure's primary CDF.
//
// Usage:
//
//	meshanalyze -data fleet.jsonl -exp fig5.1
//	meshanalyze -seed 42 -exp all          # generate a quick fleet in memory
//	meshanalyze -scenario high-churn -exp fig7.2   # generate a scenario in memory
//	meshanalyze -data fleet.jsonl -exp fig5.2 -plot
//	meshanalyze -data fleet.bin -sec4      # §4 tables at table-sized memory
//
// -scenario generates the declared fleet in memory (a built-in name or a
// spec-file path; schema: docs/SCENARIOS.md) in place of the default
// quick fleet. It does not combine with -data — the spec declares a
// dataset, a file provides one.
//
// -sec4 streams the §4 samples out of a binary dataset one per-network
// group at a time (the flat-sample section when present, decoded across
// -workers cores; an incremental per-network flatten otherwise) and runs
// the sample-only experiments through their chunked accumulators without
// ever materializing the fleet *or* the samples — peak memory is the
// experiments' count/histogram tables plus a bounded window of groups,
// which is what makes reference-scale caches analyzable on small
// machines. Experiments outside that population, or a dataset in a
// format that cannot stream, are clear errors rather than silent
// fallbacks.
//
// -shards N runs the full suite as a fault-tolerant sharded stream over
// an MLF2 file (or a directory of per-shard MLF2 files): shard workers
// retry transient I/O failures with capped exponential backoff
// (-max-retries per shard), corrupt shards are quarantined, and
// -allow-partial turns a quarantine from a fatal error into a degraded
// run whose coverage manifest is printed to stderr.
//
// -checkpoint DIR makes the sharded run crash-resumable: every
// -checkpoint-every fully-observed networks, each shard durably
// snapshots its accumulator state into DIR (atomic temp+fsync+rename,
// CRC-guarded, last two generations kept). A killed run restarted with
// -resume seeks straight past the checkpointed work and finalizes
// byte-identically to an uninterrupted run; checkpoints from a
// different dataset or shard layout are a usage error (exit 2), and
// stale or corrupt generations are skipped by checksum and reported in
// the manifest. -checkpoint without -shards runs one shard.
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error (including a
// -resume dataset mismatch), 3 corrupt input, 4 transient-retry budget
// exhausted, 130 interrupted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"meshlab"
	"meshlab/internal/conc"
	"meshlab/internal/dataset"
	"meshlab/internal/phy"
	"meshlab/internal/routing"
	"meshlab/internal/rusage"
	"meshlab/internal/scenario"
	"meshlab/internal/textplot"
)

// usageError marks an error as the caller's invocation being wrong (bad
// flag, bad combination), mapping it to exit code 2 instead of the
// runtime-failure codes.
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

// exitCode implements the documented contract: 2 for usage errors
// (flag-parse failures, and a -resume whose checkpoints name a
// different dataset), then the streaming classification — 3 corrupt
// input, 4 transient exhaustion, 130 interrupted, 1 anything else. The
// authoritative table lives on shard.ExitCode.
func exitCode(err error) int {
	var u usageError
	if errors.As(err, &u) || errors.Is(err, flag.ErrHelp) || errors.Is(err, meshlab.ErrCheckpointMismatch) {
		return 2
	}
	return meshlab.ShardExitCode(err)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "meshanalyze: %v\n", err)
		os.Exit(exitCode(err))
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("meshanalyze", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		data    = fs.String("data", "", "dataset file from meshgen (empty: generate a quick fleet from -seed)")
		seed    = fs.Uint64("seed", 42, "seed for in-memory generation when -data is empty")
		exp     = fs.String("exp", "all", "experiment ID (see -list) or 'all'")
		list    = fs.Bool("list", false, "list experiment IDs and exit")
		plot    = fs.Bool("plot", false, "also render an ASCII plot where the figure is a CDF")
		sec4    = fs.Bool("sec4", false, "stream the §4 samples from a binary -data file group by group and run the sample-only experiments at table-sized memory")
		shards  = fs.Int("shards", 0, "run the suite as N fault-tolerant shards over an MLF2 -data file or shard directory (0: single-pass)")
		retries = fs.Int("max-retries", 3, "per-shard transient-failure retry budget (sharded mode)")
		partial = fs.Bool("allow-partial", false, "complete a sharded run without its quarantined shards, printing a coverage manifest to stderr (default: a corrupt shard is fatal)")
		ckdir   = fs.String("checkpoint", "", "checkpoint directory: durably snapshot each shard's progress so a killed run can -resume (implies one shard if -shards is 0)")
		ckevery = fs.Int("checkpoint-every", 16, "networks between durable checkpoints per shard")
		resume  = fs.Bool("resume", false, "resume from the newest valid checkpoints in -checkpoint before streaming")
		workers = fs.Int("workers", 0, "process-wide worker budget for every parallel kernel (0: all cores, 1: effectively single-threaded)")
		rss     = fs.Bool("rusage", false, "print the process max RSS (getrusage) after the run")
		scen    = fs.String("scenario", "", "declarative scenario to generate in memory: a built-in name or a spec-file path (conflicts with -data)")
	)
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	conc.SetBudget(*workers)
	if *rss {
		defer func() {
			fmt.Fprintf(stdout, "max RSS (getrusage): %d MB\n", rusage.MaxRSSBytes()>>20)
		}()
	}

	if *list {
		for _, id := range meshlab.ExperimentIDs() {
			fmt.Fprintln(stdout, id)
		}
		return nil
	}

	if *resume && *ckdir == "" {
		return usagef("-resume needs -checkpoint DIR to resume from")
	}
	if *scen != "" {
		if *data != "" {
			return usagef("-scenario and -data are mutually exclusive: the spec declares a dataset, the file provides one (use meshreport -scenario -data to validate a file against a scenario)")
		}
		if *sec4 || *shards != 0 || *ckdir != "" {
			return usagef("-scenario generates in memory; -sec4/-shards/-checkpoint stream a -data file (generate one with `meshgen -scenario %s`)", *scen)
		}
	}
	if *shards != 0 || *ckdir != "" {
		if *sec4 {
			return usagef("-shards already streams the §4 samples chunked; drop -sec4")
		}
		k := *shards
		if k == 0 {
			// -checkpoint alone: one shard, byte-identical to a plain
			// streaming run but resumable.
			k = 1
		}
		return runSharded(stdout, *data, *exp, *plot, meshlab.ShardOptions{
			Shards: k, Workers: *workers, MaxRetries: *retries, AllowPartial: *partial,
			CheckpointDir: *ckdir, CheckpointEvery: *ckevery, Resume: *resume,
		})
	}

	if *sec4 {
		return runSampleOnly(stdout, *data, *exp, *plot, *workers)
	}

	fleet, err := loadOrGenerate(*data, *scen, *seed)
	if err != nil {
		return err
	}
	a := meshlab.NewAnalysis(fleet)

	ids := []string{*exp}
	if *exp == "all" {
		ids = meshlab.ExperimentIDs()
	}
	for _, id := range ids {
		res, err := a.Run(id)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, res.Format())
		if *plot {
			renderPlot(stdout, a, id)
		}
		fmt.Fprintln(stdout)
	}
	return nil
}

// runSharded is the -shards mode: the full suite over a fault-tolerant
// sharded stream, with the degraded-mode coverage manifest (if any) on
// stderr so piped table output stays clean.
func runSharded(stdout io.Writer, data, exp string, plot bool, so meshlab.ShardOptions) error {
	if data == "" {
		return usagef("-shards/-checkpoint stream a binary dataset: pass -data fleet.bin or -data shard-dir/")
	}
	res, err := meshlab.ShardedStream(context.Background(), data, so)
	if err != nil {
		return err
	}
	if res.Manifest.Degraded || res.Manifest.CheckpointNotes() {
		fmt.Fprint(os.Stderr, res.Manifest.Format())
	}
	printed := false
	for _, r := range res.Results {
		if exp != "all" && r.ID != exp {
			continue
		}
		printed = true
		fmt.Fprint(stdout, r.Format())
		if plot {
			fmt.Fprintln(stdout, "(no plot in sharded mode)")
		}
		fmt.Fprintln(stdout)
	}
	if !printed {
		return usagef("unknown experiment %q (see -list)", exp)
	}
	return nil
}

// runSampleOnly is the -sec4 mode: the §4 sample-only experiments over a
// chunked sample-group stream, never materializing the fleet or the
// samples.
func runSampleOnly(stdout io.Writer, data, exp string, plot bool, workers int) error {
	if data == "" {
		return fmt.Errorf("-sec4 streams samples from a dataset file: pass -data fleet.bin (generate one with `meshgen -out fleet.bin -flat-samples`)")
	}
	ids := []string{exp}
	if exp == "all" {
		ids = meshlab.SampleExperimentIDs()
	}
	known := make(map[string]bool)
	for _, id := range meshlab.ExperimentIDs() {
		known[id] = true
	}
	for _, id := range ids {
		if !known[id] {
			return fmt.Errorf("unknown experiment %q (see -list)", id)
		}
		if !meshlab.SampleOnlyExperiment(id) {
			return fmt.Errorf("experiment %s needs the full fleet; -sec4 can only run %s (drop -sec4 to materialize the dataset)",
				id, strings.Join(meshlab.SampleExperimentIDs(), ", "))
		}
	}
	results, err := meshlab.StreamSampleExperiments(data, ids, workers)
	if err != nil {
		return err
	}
	for _, res := range results {
		fmt.Fprint(stdout, res.Format())
		if plot {
			// No sample-only experiment has a CDF plot; keep the fallback
			// message the full mode prints.
			fmt.Fprintln(stdout, "(no plot for this experiment)")
		}
		fmt.Fprintln(stdout)
	}
	return nil
}

func loadOrGenerate(path, scen string, seed uint64) (*meshlab.Fleet, error) {
	if path != "" {
		return meshlab.LoadFleet(path)
	}
	if scen != "" {
		sp, err := scenario.Resolve(scen)
		if err != nil {
			return nil, usageError{err}
		}
		return meshlab.GenerateFleet(sp.Options())
	}
	return meshlab.GenerateFleet(meshlab.QuickOptions(seed))
}

// renderPlot draws the figure's primary distribution for the experiments
// where a terminal CDF is meaningful.
func renderPlot(stdout io.Writer, a *meshlab.Analysis, id string) {
	switch id {
	case "fig5.1":
		ri := phy.BandBG.RateIndex("1M")
		var imps []float64
		for _, nd := range a.Fleet.ByBand("bg") {
			if nd.NumAPs() < 5 {
				continue
			}
			prs, err := a.Improvements(nd, ri, routing.ETX1)
			if err != nil {
				return
			}
			for _, pr := range prs {
				imps = append(imps, pr.Improvement)
			}
		}
		fmt.Fprint(stdout, textplot.CDF(imps, 60, 14, "ETX1 improvement @1M"))
	case "fig5.2":
		var ratios []float64
		ri := phy.BandBG.RateIndex("1M")
		for _, nd := range a.Fleet.ByBand("bg") {
			ms, err := a.Matrices(nd)
			if err != nil {
				return
			}
			ratios = append(ratios, routing.AsymmetryRatios(ms[ri])...)
		}
		fmt.Fprint(stdout, textplot.CDF(ratios, 60, 14, "fwd/rev delivery ratio @1M"))
	case "fig3.1":
		var stds []float64
		a.Fleet.EachProbeSet("", func(_ *dataset.NetworkData, _ *dataset.Link, ps *dataset.ProbeSet) {
			stds = append(stds, float64(ps.SNRStd))
		})
		fmt.Fprint(stdout, textplot.CDF(stds, 60, 14, "intra-probe-set SNR std (dB)"))
	default:
		fmt.Fprintln(stdout, "(no plot for this experiment)")
	}
}
