// Command meshanalyze runs one (or all) of the thesis's experiments
// against a dataset and prints the regenerated table, optionally with an
// ASCII rendering of the figure's primary CDF.
//
// Usage:
//
//	meshanalyze -data fleet.jsonl -exp fig5.1
//	meshanalyze -seed 42 -exp all          # generate a quick fleet in memory
//	meshanalyze -data fleet.jsonl -exp fig5.2 -plot
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"meshlab"
	"meshlab/internal/dataset"
	"meshlab/internal/phy"
	"meshlab/internal/routing"
	"meshlab/internal/textplot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "meshanalyze: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("meshanalyze", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		data = fs.String("data", "", "dataset file from meshgen (empty: generate a quick fleet from -seed)")
		seed = fs.Uint64("seed", 42, "seed for in-memory generation when -data is empty")
		exp  = fs.String("exp", "all", "experiment ID (see -list) or 'all'")
		list = fs.Bool("list", false, "list experiment IDs and exit")
		plot = fs.Bool("plot", false, "also render an ASCII plot where the figure is a CDF")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, id := range meshlab.ExperimentIDs() {
			fmt.Fprintln(stdout, id)
		}
		return nil
	}

	fleet, err := loadOrGenerate(*data, *seed)
	if err != nil {
		return err
	}
	a := meshlab.NewAnalysis(fleet)

	ids := []string{*exp}
	if *exp == "all" {
		ids = meshlab.ExperimentIDs()
	}
	for _, id := range ids {
		res, err := a.Run(id)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, res.Format())
		if *plot {
			renderPlot(stdout, a, id)
		}
		fmt.Fprintln(stdout)
	}
	return nil
}

func loadOrGenerate(path string, seed uint64) (*meshlab.Fleet, error) {
	if path != "" {
		return meshlab.LoadFleet(path)
	}
	return meshlab.GenerateFleet(meshlab.QuickOptions(seed))
}

// renderPlot draws the figure's primary distribution for the experiments
// where a terminal CDF is meaningful.
func renderPlot(stdout io.Writer, a *meshlab.Analysis, id string) {
	switch id {
	case "fig5.1":
		ri := phy.BandBG.RateIndex("1M")
		var imps []float64
		for _, nd := range a.Fleet.ByBand("bg") {
			if nd.NumAPs() < 5 {
				continue
			}
			prs, err := a.Improvements(nd, ri, routing.ETX1)
			if err != nil {
				return
			}
			for _, pr := range prs {
				imps = append(imps, pr.Improvement)
			}
		}
		fmt.Fprint(stdout, textplot.CDF(imps, 60, 14, "ETX1 improvement @1M"))
	case "fig5.2":
		var ratios []float64
		ri := phy.BandBG.RateIndex("1M")
		for _, nd := range a.Fleet.ByBand("bg") {
			ms, err := a.Matrices(nd)
			if err != nil {
				return
			}
			ratios = append(ratios, routing.AsymmetryRatios(ms[ri])...)
		}
		fmt.Fprint(stdout, textplot.CDF(ratios, 60, 14, "fwd/rev delivery ratio @1M"))
	case "fig3.1":
		var stds []float64
		a.Fleet.EachProbeSet("", func(_ *dataset.NetworkData, _ *dataset.Link, ps *dataset.ProbeSet) {
			stds = append(stds, float64(ps.SNRStd))
		})
		fmt.Fprint(stdout, textplot.CDF(stds, 60, 14, "intra-probe-set SNR std (dB)"))
	default:
		fmt.Fprintln(stdout, "(no plot for this experiment)")
	}
}
