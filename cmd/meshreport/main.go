// Command meshreport runs every experiment against a dataset and emits a
// markdown report recording paper-reported versus measured results for
// each table and figure. It is the generator of EXPERIMENTS.md.
//
// Usage:
//
//	meshreport -seed 42 -scale quick -out EXPERIMENTS.md
//	meshreport -data fleet.jsonl -out EXPERIMENTS.md
//	meshreport -scale quick -workers 1 -out EXPERIMENTS.md   # serial scheduling
//	meshreport -scale reference -dataset fleet.bin           # cache synthesis
//	meshreport -scale reference -dataset fleet.bin -stream   # must stream, never regenerate
//	meshreport -scenario dense-urban -dataset dense.bin      # declarative scenario, cached
//	meshreport -scenario dense-urban -data dense.bin -stream # stream + validate identity
//
// -scenario resolves a declarative spec (a built-in name or a file path;
// schema: docs/SCENARIOS.md) in place of -scale. With -data, the walk
// doubles as identity validation: a file generated from a different
// scenario fails with guidance instead of silently reporting over the
// wrong dataset. With -dataset, a stale cache is regenerated.
//
// Experiments and dataset synthesis fan out across a worker pool
// (-workers, default all cores; 1 schedules networks and experiments
// serially, though some analysis kernels keep their internal
// concurrency); the output is byte-identical at any pool size. With
// -dataset, the first run writes the synthesized fleet to the given path
// and later runs with the same seed/scale load it instead of
// re-synthesizing (a mismatched or unreadable file is regenerated).
//
// Binary datasets run through the single-pass streaming suite
// (meshlab.StreamFleet): networks are decoded, analyzed, and released one
// bounded window at a time, so peak memory is the derived data, not the
// fleet, and a cache's flat-sample section primes the §4 analysis so warm
// starts skip re-flattening probe data. JSON-lines input and cache misses
// fall back to materializing; -stream forbids that fallback and errors
// with guidance instead, for runs that must stay within derived-data
// memory. The report is byte-identical on every path (see docs/FORMAT.md).
//
// -shards N runs the suite as a fault-tolerant sharded stream over an
// MLF2 -data file (or a directory of per-shard MLF2 files): transient
// I/O failures are retried per shard (-max-retries), corrupt shards are
// quarantined, and -allow-partial lets the report complete in degraded
// mode — the coverage manifest goes to stderr and the report preamble
// names the run degraded.
//
// -checkpoint DIR makes the sharded run crash-resumable: every
// -checkpoint-every fully-observed networks, each shard durably
// snapshots its accumulator state into DIR (atomic temp+fsync+rename,
// CRC-guarded, last two generations kept). A killed run restarted with
// -resume seeks straight past the checkpointed work and produces a
// byte-identical report; checkpoints from a different dataset or shard
// layout are a usage error (exit 2), and stale or corrupt generations
// are skipped by checksum and reported in the manifest. -checkpoint
// without -shards runs one shard.
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error (including a
// -resume dataset mismatch), 3 corrupt input, 4 transient-retry budget
// exhausted, 130 interrupted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"meshlab"
	"meshlab/internal/conc"
	"meshlab/internal/report"
	"meshlab/internal/rusage"
	"meshlab/internal/scenario"
)

// usageError marks an error as the caller's invocation being wrong (bad
// flag, bad combination), mapping it to exit code 2 instead of the
// runtime-failure codes.
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

// exitCode implements the documented contract: 2 for usage errors
// (flag-parse failures, and a -resume whose checkpoints name a
// different dataset), then the streaming classification — 3 corrupt
// input, 4 transient exhaustion, 130 interrupted, 1 anything else. The
// authoritative table lives on shard.ExitCode.
func exitCode(err error) int {
	var u usageError
	if errors.As(err, &u) || errors.Is(err, flag.ErrHelp) || errors.Is(err, meshlab.ErrCheckpointMismatch) {
		return 2
	}
	return meshlab.ShardExitCode(err)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "meshreport: %v\n", err)
		os.Exit(exitCode(err))
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("meshreport", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		data    = fs.String("data", "", "dataset file (empty: generate from -seed/-scale)")
		cache   = fs.String("dataset", "", "dataset cache path: loaded when it matches -seed/-scale, (re)written otherwise")
		seed    = fs.Uint64("seed", 42, "generation seed when -data is empty")
		scale   = fs.String("scale", "quick", "generation scale when -data is empty: quick|reference")
		out     = fs.String("out", "EXPERIMENTS.md", "output markdown path")
		workers = fs.Int("workers", 0, "process-wide worker budget for every parallel kernel — synthesis, probe links, experiment scheduling, streaming decode (0: all cores, 1: effectively single-threaded)")
		stream  = fs.Bool("stream", false, "require the single-pass streaming suite: error (with guidance) instead of materializing or regenerating when the dataset cannot stream")
		shards  = fs.Int("shards", 0, "run the suite as N fault-tolerant shards over an MLF2 -data file or shard directory (0: single-pass)")
		retries = fs.Int("max-retries", 3, "per-shard transient-failure retry budget (sharded mode)")
		partial = fs.Bool("allow-partial", false, "complete a degraded report without quarantined shards, printing a coverage manifest to stderr (default: a corrupt shard is fatal)")
		ckdir   = fs.String("checkpoint", "", "checkpoint directory: durably snapshot each shard's progress so a killed run can -resume (implies one shard if -shards is 0)")
		ckevery = fs.Int("checkpoint-every", 16, "networks between durable checkpoints per shard")
		resume  = fs.Bool("resume", false, "resume from the newest valid checkpoints in -checkpoint before streaming")
		rss     = fs.Bool("rusage", false, "print the process max RSS (getrusage) after the run — what the CI guardrail records")
		scen    = fs.String("scenario", "", "declarative scenario: a built-in name or a spec-file path (replaces -scale; with -data, the file is validated against the scenario)")
	)
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	// One knob bounds every parallel kernel in the process — synthesis,
	// experiment scheduling, the stream pipeline, §4 penalty scopes,
	// probe-link fan-out, and wire sample-group decoding — so -workers 1
	// runs effectively single-threaded.
	conc.SetBudget(*workers)
	if *data != "" && *cache != "" {
		return usagef("-data and -dataset are mutually exclusive: -data reads a fixed file, -dataset manages a synthesis cache")
	}
	if (*shards != 0 || *ckdir != "") && *data == "" {
		return usagef("-shards/-checkpoint stream a binary dataset: pass -data fleet.bin or -data shard-dir/")
	}
	if *resume && *ckdir == "" {
		return usagef("-resume needs -checkpoint DIR to resume from")
	}
	k := *shards
	if k == 0 && *ckdir != "" {
		// -checkpoint alone: one shard, byte-identical to the plain
		// streaming suite but resumable.
		k = 1
	}

	// Resolve the generation identity: a scenario spec or the -scale/-seed
	// knobs. ident labels the report; regen is the meshgen invocation
	// -stream guidance quotes.
	var (
		opts  meshlab.Options
		sp    *scenario.Spec
		ident string
		regen string
	)
	if *scen != "" {
		scaleSet, seedSet := false, false
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "scale":
				scaleSet = true
			case "seed":
				seedSet = true
			}
		})
		if scaleSet {
			return usagef("-scenario conflicts with -scale: the spec declares the fleet and probe window")
		}
		if k != 0 {
			return usagef("-scenario does not combine with -shards/-checkpoint: the sharded walk cannot validate dataset identity; stream it plainly first")
		}
		var err error
		sp, err = scenario.Resolve(*scen)
		if err != nil {
			return usageError{err}
		}
		opts = sp.Options()
		if seedSet {
			opts.Seed = *seed
		}
		ident = fmt.Sprintf("scenario %s, seed %d", sp.Name, opts.Seed)
		regen = fmt.Sprintf("meshgen -scenario %s", *scen)
	} else {
		switch *scale {
		case "quick":
			opts = meshlab.QuickOptions(*seed)
		case "reference":
			opts = meshlab.ReferenceOptions(*seed)
		default:
			return usagef("unknown scale %q", *scale)
		}
		ident = fmt.Sprintf("%s, seed %d", *scale, *seed)
		regen = fmt.Sprintf("meshgen -scale %s -seed %d", *scale, *seed)
	}
	opts.Workers = *workers

	so := meshlab.ShardOptions{
		Shards: k, Workers: *workers, MaxRetries: *retries, AllowPartial: *partial,
		CheckpointDir: *ckdir, CheckpointEvery: *ckevery, Resume: *resume,
	}
	results, sum, label, expDur, err := obtainResults(*data, *cache, opts, sp, ident, regen, *workers, *stream, k != 0, so)
	if err != nil {
		return err
	}

	md := report.Markdown(report.Preamble{Label: label, Sum: sum, ExpDuration: expDur}, results)
	if err := os.WriteFile(*out, []byte(md), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%d experiments)\n", *out, len(results))
	if *rss {
		fmt.Fprintf(stdout, "max RSS (getrusage): %d MB\n", rusage.MaxRSSBytes()>>20)
	}
	return nil
}

// obtainResults produces the full suite's results plus a dataset summary
// and label for the report preamble. Binary datasets run through the
// single-pass streaming suite; everything else (JSON lines, cache misses,
// direct generation) materializes a fleet — unless forceStream forbids
// the fallback. opts is the resolved generation identity (from -scenario
// or -scale/-seed), ident its short label, and regen the meshgen
// invocation that guidance messages quote. A non-nil sp makes a -data
// walk double as identity validation: the file must be the scenario's
// dataset, and a mismatch is an error, never a silent reuse. The
// returned duration covers experiment execution only (for streaming, the
// walk is the execution).
func obtainResults(data, cache string, opts meshlab.Options, sp *scenario.Spec, ident, regen string, workers int, forceStream, sharded bool, so meshlab.ShardOptions) ([]*meshlab.Result, *meshlab.StreamSummary, string, time.Duration, error) {
	if data != "" {
		if sharded {
			return runSharded(data, so)
		}
		stream := meshlab.StreamOptions{Workers: workers}
		label := fmt.Sprintf("%s (streamed)", data)
		if sp != nil {
			if opts.CacheValidatable() {
				stream.Validate = &opts
				label = fmt.Sprintf("%s (streamed; validated against %s)", data, ident)
			} else {
				label = fmt.Sprintf("%s (streamed; %s declares overrides a dataset cannot record, identity unvalidated)", data, ident)
			}
		}
		start := time.Now()
		results, sum, err := meshlab.StreamFleet(data, stream)
		switch {
		case err == nil:
			return results, sum, label, time.Since(start), nil
		case errors.Is(err, meshlab.ErrCacheMismatch):
			return nil, nil, "", 0, fmt.Errorf(
				"%s is not the %s dataset: %w\nregenerate it: `%s -flat-samples -out %s`", data, ident, err, regen, data)
		case forceStream:
			return nil, nil, "", 0, fmt.Errorf("-stream: %w", err)
		case sp != nil, !errors.Is(err, meshlab.ErrNotStreamable):
			// A scenario-validated walk never falls back to an
			// unvalidated materialization.
			return nil, nil, "", 0, err
		}
		f, samples, err := meshlab.LoadFleetSamples(data)
		if err != nil {
			return nil, nil, "", 0, err
		}
		return runMaterialized(f, samples, workers, data)
	}
	if cache != "" {
		if opts.CacheValidatable() {
			start := time.Now()
			results, sum, err := meshlab.StreamFleet(cache, meshlab.StreamOptions{Workers: workers, Validate: &opts})
			if err == nil {
				return results, sum, fmt.Sprintf("%s (cache hit, synthesis skipped; streamed)", cache), time.Since(start), nil
			}
			if forceStream {
				return nil, nil, "", 0, fmt.Errorf(
					"-stream: %s cannot serve the streaming suite: %w\nregenerate it first: `%s -dataset %s` (or rerun without -stream to synthesize and materialize)",
					cache, err, regen, cache)
			}
			// Any failure — missing file, mismatch, corruption — falls back
			// to the materializing cache path, which regenerates.
		} else if forceStream {
			return nil, nil, "", 0, fmt.Errorf("-stream: these options cannot be validated against a cache file, so a streamed %s cannot be trusted", cache)
		}
		f, samples, hit, err := meshlab.LoadOrGenerateFleetSamples(cache, opts)
		if err != nil {
			return nil, nil, "", 0, err
		}
		switch {
		case hit:
			return runMaterialized(f, samples, workers, fmt.Sprintf("%s (cache hit, synthesis skipped)", cache))
		case !opts.CacheValidatable():
			return runMaterialized(f, nil, workers, fmt.Sprintf("generated in-memory (%s; -dataset bypassed: options not cache-validatable)", ident))
		default:
			return runMaterialized(f, samples, workers, fmt.Sprintf("%s (cache written: %s)", cache, ident))
		}
	}
	if forceStream {
		return nil, nil, "", 0, fmt.Errorf("-stream needs a dataset to walk: pass -data fleet.bin or -dataset cache.bin")
	}
	f, err := meshlab.GenerateFleet(opts)
	if err != nil {
		return nil, nil, "", 0, err
	}
	return runMaterialized(f, nil, workers, fmt.Sprintf("generated in-memory (%s)", ident))
}

// runSharded runs the suite as a fault-tolerant sharded stream. The
// coverage manifest of a degraded run goes to stderr (so the report and
// the wrote-line on stdout stay clean), and the degradation is named in
// the report's dataset label.
func runSharded(data string, so meshlab.ShardOptions) ([]*meshlab.Result, *meshlab.StreamSummary, string, time.Duration, error) {
	start := time.Now()
	res, err := meshlab.ShardedStream(context.Background(), data, so)
	if err != nil {
		return nil, nil, "", 0, err
	}
	sum := &meshlab.StreamSummary{
		Meta: res.Meta, Networks: res.Networks, NetworksBG: res.NetworksBG,
		NetworksN: res.NetworksN, ProbeSets: res.ProbeSets, FlatSamples: res.FlatSamples,
	}
	label := fmt.Sprintf("%s (sharded stream, %d shards)", data, len(res.Manifest.Shards))
	if res.Manifest.Degraded || res.Manifest.CheckpointNotes() {
		fmt.Fprint(os.Stderr, res.Manifest.Format())
	}
	if res.Manifest.Degraded {
		label += fmt.Sprintf("; DEGRADED: %d of %d networks skipped",
			len(res.Manifest.Skipped), res.Networks+len(res.Manifest.Skipped))
	}
	return res.Results, sum, label, time.Since(start), nil
}

// runMaterialized runs the suite over an in-memory fleet, priming any
// flat samples a dataset load carried, and summarizes the fleet for the
// report preamble.
func runMaterialized(f *meshlab.Fleet, samples meshlab.FleetSamples, workers int, label string) ([]*meshlab.Result, *meshlab.StreamSummary, string, time.Duration, error) {
	a := meshlab.NewAnalysis(f)
	// A dataset file's flat-sample section replaces the §4 flattening
	// pass; the samples are identical to what the analysis would derive.
	for band, s := range samples {
		a.PrimeSamples(band, s)
	}
	start := time.Now()
	// The parallel runner produces byte-identical results in the same
	// paper order, so the report does not depend on -workers.
	results, err := a.RunAllParallel(workers)
	if err != nil {
		return nil, nil, "", 0, err
	}
	sum := &meshlab.StreamSummary{
		Meta:            f.Meta,
		Networks:        len(f.Networks),
		NetworksBG:      len(f.ByBand("bg")),
		NetworksN:       len(f.ByBand("n")),
		ProbeSets:       f.NumProbeSets(),
		FlatSamples:     samples != nil,
		MaxLiveNetworks: len(f.Networks),
	}
	return results, sum, label, time.Since(start), nil
}
