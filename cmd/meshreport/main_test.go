package main

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"meshlab"
	"meshlab/internal/atomicio"
	"meshlab/internal/scenario"
)

// update regenerates testdata/quick_report.golden instead of comparing:
//
//	go test ./cmd/meshreport -run TestGoldenQuickReport -update
var update = flag.Bool("update", false, "rewrite the golden report from the current output")

// wallTimeLine is the only nondeterministic report line; golden
// comparison elides it.
var wallTimeLine = regexp.MustCompile(`(?m)^- experiment wall time: .*$`)

func normalizeReport(md string) string {
	return wallTimeLine.ReplaceAllString(md, "- experiment wall time: (elided)")
}

// TestGoldenQuickReport pins the full quick-fleet report byte for byte
// (modulo the wall-time line), so a refactor cannot silently drift any
// paper table. Regenerate deliberately with -update after an intended
// change.
func TestGoldenQuickReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "EXP.md")
	if err := run([]string{"-seed", "21", "-scale", "quick", "-out", out}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	got := normalizeReport(string(raw))
	golden := filepath.Join("testdata", "quick_report.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		// Atomic replace: a ^C mid-update can't leave a torn golden.
		if err := atomicio.WriteBytes(golden, 0o644, []byte(got)); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden report missing (regenerate with `go test ./cmd/meshreport -run TestGoldenQuickReport -update`): %v", err)
	}
	if got != string(want) {
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("report drifted from golden at line %d:\n got: %s\nwant: %s\n(regenerate deliberately with -update)", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("report length drifted from golden: %d vs %d lines (regenerate deliberately with -update)", len(gl), len(wl))
	}
}

// TestStreamFlagErrors: -stream must never silently materialize or
// regenerate; each unusable input gets an actionable error.
func TestStreamFlagErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-stream", "-out", filepath.Join(dir, "a.md")}, &strings.Builder{}); err == nil {
		t.Fatal("-stream without a dataset should error")
	}
	err := run([]string{"-stream", "-dataset", filepath.Join(dir, "missing.bin"), "-out", filepath.Join(dir, "b.md")}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "regenerate") {
		t.Fatalf("missing cache under -stream should explain how to regenerate, got %v", err)
	}

	fleet, genErr := meshlab.GenerateFleet(meshlab.QuickOptions(21))
	if genErr != nil {
		t.Fatal(genErr)
	}
	jsonl := filepath.Join(dir, "fleet.jsonl")
	if err := meshlab.SaveFleet(jsonl, fleet); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-stream", "-data", jsonl, "-out", filepath.Join(dir, "c.md")}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "streamable") {
		t.Fatalf("JSONL under -stream should name the format problem, got %v", err)
	}
}

// TestStreamedWarmCache: a cold -dataset run synthesizes and writes the
// cache; the warm run serves it through the streaming suite and the
// experiment sections match byte for byte.
func TestStreamedWarmCache(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "fleet.bin")
	cold := filepath.Join(dir, "cold.md")
	warm := filepath.Join(dir, "warm.md")
	if err := run([]string{"-seed", "21", "-scale", "quick", "-dataset", cache, "-out", cold}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-seed", "21", "-scale", "quick", "-dataset", cache, "-stream", "-out", warm}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(cold)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(warm)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "synthesis skipped; streamed") {
		t.Fatalf("warm run did not stream: %q", string(b)[:200])
	}
	cut := func(md string) string { return md[strings.Index(md, "\n## "):] }
	if cut(string(a)) != cut(string(b)) {
		t.Fatal("streamed warm run diverged from the cold materialized run")
	}
}

func TestRunQuickReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "EXP.md")
	var buf strings.Builder
	if err := run([]string{"-seed", "21", "-scale", "quick", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote") {
		t.Fatalf("no confirmation: %q", buf.String())
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	md := string(b)
	for _, want := range []string{
		"# EXPERIMENTS — paper vs. measured",
		"## fig3.1", "## fig4.2", "## fig5.1", "## fig6.1", "## fig7.4",
		"Paper reports:",
		"| --- |",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	// Every registered experiment must appear.
	if got := strings.Count(md, "\n## "); got < 25 {
		t.Fatalf("only %d experiment sections", got)
	}
}

func TestRunBadScale(t *testing.T) {
	if err := run([]string{"-scale", "wat"}, &strings.Builder{}); err == nil {
		t.Fatal("bad scale should error")
	}
}

func TestRunMissingData(t *testing.T) {
	if err := run([]string{"-data", "/nonexistent.bin"}, &strings.Builder{}); err == nil {
		t.Fatal("missing dataset should error")
	}
}

// TestDatasetCacheSkipsSynthesis runs the report twice against the same
// -dataset path: the first run writes the cache, the second loads it and
// must produce a byte-identical experiments section.
func TestDatasetCacheSkipsSynthesis(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "fleet.bin")
	out1 := filepath.Join(dir, "a.md")
	out2 := filepath.Join(dir, "b.md")

	var cold strings.Builder
	if err := run([]string{"-seed", "21", "-scale", "quick", "-dataset", cache, "-out", out1}, &cold); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cache); err != nil {
		t.Fatalf("cache not written: %v", err)
	}
	var warm strings.Builder
	if err := run([]string{"-seed", "21", "-scale", "quick", "-dataset", cache, "-out", out2}, &warm); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	// Only the dataset label and wall-time lines may differ between the
	// cold and warm runs; every experiment section must match exactly.
	cut := func(md string) string {
		i := strings.Index(md, "\n## ")
		if i < 0 {
			t.Fatal("report has no experiment sections")
		}
		return md[i:]
	}
	if cut(string(a)) != cut(string(b)) {
		t.Fatal("cached run produced different experiment results")
	}
	if !strings.Contains(string(b), "cache hit, synthesis skipped") {
		t.Fatalf("warm run label missing cache hit: %q", string(b)[:200])
	}
}

// TestDatasetCacheInvalidatedBySeed re-runs with a different seed against
// the same cache file and expects regeneration, not a stale hit.
func TestDatasetCacheInvalidatedBySeed(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "fleet.bin")
	out := filepath.Join(dir, "a.md")
	if err := run([]string{"-seed", "21", "-scale", "quick", "-dataset", cache, "-out", out}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-seed", "22", "-scale", "quick", "-dataset", cache, "-out", out}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	md, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "seed: 22") {
		t.Fatal("report still reflects the stale cached seed")
	}
}

// TestStreamingPathMatchesInMemory is the report-level oracle for the
// streaming dataset path: one run generates the fleet in memory, one
// streams a plain binary file, and one streams a sample-carrying binary
// file (priming the §4 analysis from the flat-sample section). All three
// reports must agree byte-for-byte on every experiment section; only the
// dataset-label and wall-time preamble lines may differ.
func TestStreamingPathMatchesInMemory(t *testing.T) {
	dir := t.TempDir()
	gen := filepath.Join(dir, "fleet.bin")
	genSamples := filepath.Join(dir, "samples.bin")
	fleet, err := meshlab.GenerateFleet(meshlab.QuickOptions(21))
	if err != nil {
		t.Fatal(err)
	}
	if err := meshlab.SaveFleet(gen, fleet); err != nil {
		t.Fatal(err)
	}
	if err := meshlab.SaveFleetWithSamples(genSamples, fleet); err != nil {
		t.Fatal(err)
	}

	outs := map[string][]string{
		"memory":   {"-seed", "21", "-scale", "quick"},
		"streamed": {"-data", gen},
		"primed":   {"-data", genSamples},
	}
	sections := map[string]string{}
	for name, args := range outs {
		out := filepath.Join(dir, name+".md")
		if err := run(append(args, "-out", out), &strings.Builder{}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		md, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		i := strings.Index(string(md), "\n## ")
		if i < 0 {
			t.Fatalf("%s: report has no experiment sections", name)
		}
		sections[name] = string(md)[i:]
	}
	if sections["memory"] != sections["streamed"] {
		t.Fatal("streamed binary run diverges from the in-memory run")
	}
	if sections["memory"] != sections["primed"] {
		t.Fatal("sample-primed run diverges from the in-memory run")
	}
}

func TestDataAndDatasetMutuallyExclusive(t *testing.T) {
	err := run([]string{"-data", "a.jsonl", "-dataset", "b.bin"}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("want mutually-exclusive error, got %v", err)
	}
}

// TestShardedReportMatchesStreamed: the -shards report must be
// byte-identical to the single-pass streamed report, modulo the dataset
// label and the wall-time line.
func TestShardedReportMatchesStreamed(t *testing.T) {
	fleet, err := meshlab.GenerateFleet(meshlab.QuickOptions(23))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	data := filepath.Join(dir, "f.bin")
	if err := meshlab.SaveFleetWithSamples(data, fleet); err != nil {
		t.Fatal(err)
	}
	read := func(args ...string) string {
		t.Helper()
		out := filepath.Join(dir, "EXP.md")
		if err := run(append(args, "-data", data, "-out", out), &strings.Builder{}); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		md := normalizeReport(string(raw))
		return regexp.MustCompile(`(?m)^- dataset: .*$`).ReplaceAllString(md, "- dataset: (elided)")
	}
	whole := read()
	sharded := read("-shards", "3")
	if whole != sharded {
		t.Fatal("sharded report diverges from the streamed report")
	}
}

func TestExitCodeMapping(t *testing.T) {
	if err := run([]string{"-shards", "2"}, &strings.Builder{}); exitCode(err) != 2 {
		t.Fatalf("-shards without -data: exit %d (%v), want 2", exitCode(err), err)
	}
	if err := run([]string{"-bogus"}, &strings.Builder{}); exitCode(err) != 2 {
		t.Fatalf("bad flag: exit %d (%v), want 2", exitCode(err), err)
	}
	if exitCode(nil) != 0 {
		t.Fatal("nil error must exit 0")
	}
}

// scenarioSpecFile writes a tiny scenario spec for scenario-flag tests;
// extra is spliced into the fleet object (e.g. a spacing_scale) so two
// specs can share metadata while declaring different layouts.
func scenarioSpecFile(t *testing.T, dir, name, extra string) string {
	t.Helper()
	path := filepath.Join(dir, name+".json")
	spec := `{
		"version": 1, "name": "` + name + `", "seed": 8,
		"fleet": {
			"networks": 2,
			"env_mix": {"indoor": 2},
			"band_mix": {"bg": 2},
			"size": {"min": 3, "max": 6, "log_mean": 1.2, "log_std": 0.3}` + extra + `
		},
		"probe": {"duration_s": 900, "interval_s": 300}
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestScenarioValidatesDataFile: with -scenario and -data, the streamed
// walk doubles as identity validation — the generating scenario passes
// and is labeled as validated, a different scenario's dataset is an
// error with regeneration guidance, never a silent report.
func TestScenarioValidatesDataFile(t *testing.T) {
	dir := t.TempDir()
	specA := scenarioSpecFile(t, dir, "tiny-a", "")
	specB := scenarioSpecFile(t, dir, "tiny-b", `, "spacing_scale": 0.5`)

	sp, err := scenario.LoadFile(specA)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := meshlab.GenerateFleet(sp.Options())
	if err != nil {
		t.Fatal(err)
	}
	data := filepath.Join(dir, "a.bin")
	if err := meshlab.SaveFleetWithSamples(data, fleet); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "a.md")
	if err := run([]string{"-scenario", specA, "-data", data, "-stream", "-out", out}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	md, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "validated against scenario tiny-a") {
		t.Fatalf("report label does not record validation: %q", string(md)[:300])
	}

	err = run([]string{"-scenario", specB, "-data", data, "-out", out}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "is not the scenario tiny-b") {
		t.Fatalf("stale dataset for a different scenario should fail with guidance: %v", err)
	}
	if !strings.Contains(err.Error(), "meshgen -scenario") {
		t.Fatalf("mismatch error misses the regeneration hint: %v", err)
	}
}

// TestScenarioCacheRegeneratedOnMismatch: a -dataset cache written by one
// scenario is regenerated — not silently reused — when a different
// scenario asks for it.
func TestScenarioCacheRegeneratedOnMismatch(t *testing.T) {
	dir := t.TempDir()
	specA := scenarioSpecFile(t, dir, "tiny-a", "")
	specB := scenarioSpecFile(t, dir, "tiny-b", `, "spacing_scale": 0.5`)
	cache := filepath.Join(dir, "cache.bin")
	out := filepath.Join(dir, "r.md")

	if err := run([]string{"-scenario", specA, "-dataset", cache, "-out", out}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", specB, "-dataset", cache, "-out", out}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	md, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "cache written: scenario tiny-b") {
		t.Fatalf("stale cache was not regenerated for the new scenario: %q", string(md)[:300])
	}
	// And now tiny-b hits its own regenerated cache.
	if err := run([]string{"-scenario", specB, "-dataset", cache, "-out", out}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	md, _ = os.ReadFile(out)
	if !strings.Contains(string(md), "cache hit, synthesis skipped") {
		t.Fatalf("regenerated cache should hit for its own scenario: %q", string(md)[:300])
	}
}

// TestScenarioFlagConflicts: scenario runs reject the knobs the spec
// owns, with usage exit codes.
func TestScenarioFlagConflicts(t *testing.T) {
	for _, args := range [][]string{
		{"-scenario", "quick", "-scale", "quick"},
		{"-scenario", "quick", "-shards", "2", "-data", "x.bin"},
		{"-scenario", "quick", "-checkpoint", "ck", "-data", "x.bin"},
	} {
		err := run(args, &strings.Builder{})
		if err == nil {
			t.Fatalf("%v: want a usage error", args)
		}
		if exitCode(err) != 2 {
			t.Fatalf("%v: usage error should exit 2, got %d (%v)", args, exitCode(err), err)
		}
	}
	err := run([]string{"-scenario", "galactic"}, &strings.Builder{})
	if err == nil || exitCode(err) != 2 || !strings.Contains(err.Error(), "no built-in named") {
		t.Fatalf("unknown scenario should be a usage error listing the catalog: %v", err)
	}
}
