package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunQuickReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "EXP.md")
	var buf strings.Builder
	if err := run([]string{"-seed", "21", "-scale", "quick", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote") {
		t.Fatalf("no confirmation: %q", buf.String())
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	md := string(b)
	for _, want := range []string{
		"# EXPERIMENTS — paper vs. measured",
		"## fig3.1", "## fig4.2", "## fig5.1", "## fig6.1", "## fig7.4",
		"Paper reports:",
		"| --- |",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	// Every registered experiment must appear.
	if got := strings.Count(md, "\n## "); got < 25 {
		t.Fatalf("only %d experiment sections", got)
	}
}

func TestRunBadScale(t *testing.T) {
	if err := run([]string{"-scale", "wat"}, &strings.Builder{}); err == nil {
		t.Fatal("bad scale should error")
	}
}

func TestRunMissingData(t *testing.T) {
	if err := run([]string{"-data", "/nonexistent.bin"}, &strings.Builder{}); err == nil {
		t.Fatal("missing dataset should error")
	}
}

func TestPaperClaimsCoverCoreArtifacts(t *testing.T) {
	for _, id := range []string{
		"fig3.1", "fig4.1", "fig4.2", "fig4.3", "fig4.4", "fig4.5", "fig4.6", "tab4.1",
		"fig5.1", "fig5.2", "fig5.3", "fig5.4", "fig5.5",
		"fig6.1", "fig6.2", "sec6.3",
		"fig7.1", "fig7.2", "fig7.3", "fig7.4", "fig7.5",
	} {
		if len(paperClaims[id]) == 0 {
			t.Errorf("no paper claims recorded for %s", id)
		}
	}
}
