// Mobilitystudy reproduces the §7 client-mobility characterization on a
// pair of generated networks (one indoor, one outdoor): AP-visit
// histogram, connection lengths, and the prevalence/persistence split.
//
//	go run ./examples/mobilitystudy
package main

import (
	"fmt"
	"log"

	"meshlab/internal/clients"
	"meshlab/internal/dataset"
	"meshlab/internal/mobility"
	"meshlab/internal/rng"
	"meshlab/internal/stats"
	"meshlab/internal/textplot"
	"meshlab/internal/topology"
)

func main() {
	root := rng.New(7)

	var cds []*dataset.ClientData
	for _, cfg := range []topology.Config{
		{Name: "office", Size: 24, Env: topology.EnvIndoor},
		{Name: "campus", Size: 24, Env: topology.EnvOutdoor},
	} {
		topo, err := topology.Generate(root.Split(cfg.Name), cfg)
		if err != nil {
			log.Fatal(err)
		}
		cd := clients.Simulate(root.Split("clients/"+cfg.Name), topo, clients.Config{})
		fmt.Printf("%s (%s): %d clients over %d hours\n",
			cfg.Name, topo.Env, len(cd.Clients), cd.Duration/3600)
		cds = append(cds, cd)
	}
	fmt.Println()

	a := mobility.Analyze(cds, mobility.DefaultGap)

	// Figure 7.1: APs visited.
	var visits []int
	for n, count := range a.APVisits {
		for i := 0; i < count; i++ {
			visits = append(visits, n)
		}
	}
	fmt.Print(textplot.Histogram(stats.NewHistogram(visits).Sorted(), 40,
		"APs visited per client (Figure 7.1)"))
	fmt.Println()

	// Figure 7.2: connection lengths.
	var hours []float64
	for _, l := range a.ConnLengths {
		hours = append(hours, l/3600)
	}
	fmt.Print(textplot.CDF(hours, 56, 10, "connection length (hours, Figure 7.2)"))
	fmt.Println()

	// Figures 7.3 / 7.4: environment split.
	for _, env := range []string{"indoor", "outdoor"} {
		prev := a.PrevalenceByEnv[env]
		pers := a.PersistenceByEnv[env]
		fmt.Printf("%s: prevalence mean %.3f median %.3f | persistence mean %.1fs median %.1fs\n",
			env, stats.Mean(prev), stats.Median(prev), stats.Mean(pers), stats.Median(pers))
	}
	fmt.Println("\n(paper: indoor 0.07/0.02 and 19.4s/6.25s; outdoor 0.15/0.08 and 38.6s/25s)")

	// Figure 7.5 quadrants.
	var hh, ll, other int
	for _, p := range a.Points {
		switch {
		case p.MaxPrevalence >= 0.5 && p.MedianPersistence >= 600:
			hh++
		case p.MaxPrevalence < 0.5 && p.MedianPersistence < 600:
			ll++
		default:
			other++
		}
	}
	fmt.Printf("\nFigure 7.5 quadrants: stay-put %d, rapid-switcher %d, other %d (of %d sessions)\n",
		hh, ll, other, len(a.Points))
}
