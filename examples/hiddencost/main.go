// Hiddencost connects the §6 hidden-triple census to the throughput damage
// it implies: it finds a generated network's relevant triples at 1 Mbit/s,
// then runs the slotted CSMA contention simulator on each with the leaf
// pair's real mutual delivery as the carrier-sense probability.
//
//	go run ./examples/hiddencost
package main

import (
	"fmt"
	"log"

	"meshlab/internal/hidden"
	"meshlab/internal/mac"
	"meshlab/internal/mesh"
	"meshlab/internal/phy"
	"meshlab/internal/probe"
	"meshlab/internal/rng"
	"meshlab/internal/routing"
	"meshlab/internal/stats"
	"meshlab/internal/topology"
)

func main() {
	root := rng.New(66)
	topo, err := topology.Generate(root.Split("topo"), topology.Config{
		Name: "dense", Size: 14, Env: topology.EnvIndoor,
	})
	if err != nil {
		log.Fatal(err)
	}
	net := mesh.Build(root.Split("mesh"), topo, phy.BandBG, mesh.BuildOptions{})
	nd := probe.Collect(root.Split("probe"), net, probe.Config{
		Duration: 4 * 3600, ReportInterval: 300,
	})

	ms, err := routing.SuccessMatrices(nd)
	if err != nil {
		log.Fatal(err)
	}
	ri := phy.BandBG.RateIndex("1M")
	m := ms[ri]
	g := hidden.HearingGraph(m, 0.10)

	census, err := hidden.Analyze(nd, 0.10)
	if err != nil {
		log.Fatal(err)
	}
	rr := census.Rates[ri]
	fmt.Printf("network %s: %d relevant triples at 1 Mbit/s, %d hidden (%.0f%%)\n\n",
		nd.Info.Name, rr.Relevant, rr.Hidden, rr.Fraction*100)

	// For each relevant triple (A, B, C) with center B, simulate A and C
	// contending for B with their actual mutual delivery as the sense
	// probability.
	var hiddenPens, openPens []float64
	n := nd.NumAPs()
	idx := 0
	for b := 0; b < n; b++ {
		for a := 0; a < n; a++ {
			if a == b || !g.Hears(a, b) {
				continue
			}
			for c := a + 1; c < n; c++ {
				if c == b || !g.Hears(c, b) {
					continue
				}
				sense := (m.At(a, c) + m.At(c, a)) / 2
				pen := mac.HiddenPenalty(root.SplitN("triple", idx), sense, 20000)
				idx++
				if g.Hears(a, c) {
					openPens = append(openPens, pen)
				} else {
					hiddenPens = append(hiddenPens, pen)
				}
			}
		}
	}

	fmt.Printf("contention throughput penalty vs perfect carrier sense:\n")
	if len(hiddenPens) > 0 {
		fmt.Printf("  hidden triples     (n=%3d): mean %.0f%%  median %.0f%%\n",
			len(hiddenPens), stats.Mean(hiddenPens)*100, stats.Median(hiddenPens)*100)
	}
	if len(openPens) > 0 {
		fmt.Printf("  non-hidden triples (n=%3d): mean %.0f%%  median %.0f%%\n",
			len(openPens), stats.Mean(openPens)*100, stats.Median(openPens)*100)
	}
	fmt.Println("\nThis is the cost §6 warns about: even a perfect rate adapter loses this")
	fmt.Println("airtime when hidden senders collide at a shared receiver.")
}
