// Opproute walks through the §5 opportunistic-routing comparison on one
// generated network: it derives per-rate delivery matrices from probe
// data, solves ETX1/ETX2 shortest paths, computes the idealized ExOR cost,
// and prints the most and least improved pairs with an ASCII CDF.
//
//	go run ./examples/opproute
package main

import (
	"fmt"
	"log"
	"sort"

	"meshlab/internal/mesh"
	"meshlab/internal/phy"
	"meshlab/internal/probe"
	"meshlab/internal/rng"
	"meshlab/internal/routing"
	"meshlab/internal/textplot"
	"meshlab/internal/topology"
)

func main() {
	root := rng.New(2010)

	// One 16-AP indoor network, probed for six hours.
	topo, err := topology.Generate(root.Split("topo"), topology.Config{
		Name: "demo", Size: 16, Env: topology.EnvIndoor,
	})
	if err != nil {
		log.Fatal(err)
	}
	net := mesh.Build(root.Split("mesh"), topo, phy.BandBG, mesh.BuildOptions{})
	nd := probe.Collect(root.Split("probe"), net, probe.Config{
		Duration: 6 * 3600, ReportInterval: 300,
	})
	fmt.Printf("network %s: %d APs, %d directed links with probe data\n\n",
		nd.Info.Name, nd.NumAPs(), len(nd.Links))

	ms, err := routing.SuccessMatrices(nd)
	if err != nil {
		log.Fatal(err)
	}
	ri := phy.BandBG.RateIndex("12M")
	m := ms[ri]

	for _, v := range []routing.Variant{routing.ETX1, routing.ETX2} {
		results := routing.Improvements(m, v)
		sort.Slice(results, func(a, b int) bool {
			return results[a].Improvement > results[b].Improvement
		})
		fmt.Printf("--- %s at 12 Mbit/s: %d reachable pairs ---\n", v, len(results))
		fmt.Println("most improved pairs:")
		for _, pr := range results[:min(3, len(results))] {
			fmt.Printf("  %2d → %2d: ETX %.2f, ExOR %.2f, improvement %.0f%%, %d hops\n",
				pr.S, pr.D, pr.ETX, pr.ExOR, pr.Improvement*100, pr.Hops)
		}
		none := 0
		var imps []float64
		for _, pr := range results {
			imps = append(imps, pr.Improvement)
			if pr.Improvement < 1e-9 {
				none++
			}
		}
		fmt.Printf("pairs with no improvement: %d/%d (%.0f%%)\n",
			none, len(results), 100*float64(none)/float64(len(results)))
		fmt.Println(textplot.CDF(imps, 56, 12, fmt.Sprintf("improvement over %s", v)))
	}

	fmt.Println("Link asymmetry at 12 Mbit/s (the reason ETX2 gains exceed ETX1):")
	fmt.Print(textplot.CDF(routing.AsymmetryRatios(m), 56, 10, "fwd/rev delivery ratio"))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
