// Rateadapt demonstrates the §4.5 protocol sketch end to end: on a single
// live link, it compares fixed rates, SampleRate-style probing, the
// thesis's per-link SNR look-up table, and the hybrid (SNR table + probing
// restricted to the table's top-k rates), against an omniscient oracle.
//
//	go run ./examples/rateadapt
package main

import (
	"fmt"

	"meshlab/internal/adapt"
	"meshlab/internal/phy"
	"meshlab/internal/radio"
	"meshlab/internal/rng"
)

func main() {
	root := rng.New(4)
	band := phy.BandBG

	for _, link := range []struct {
		name string
		dist float64
	}{
		{"strong link (15 m)", 15},
		{"mid link (40 m)", 40},
		{"marginal link (70 m)", 70},
	} {
		ch := radio.NewPair(root.Split(link.name), link.dist, radio.DefaultParams(radio.Indoor)).Fwd
		adapters := []adapt.Adapter{
			adapt.NewFixed(band, band.RateIndex("1M")),
			adapt.NewFixed(band, band.RateIndex("12M")),
			adapt.NewFixed(band, band.RateIndex("48M")),
			adapt.NewSampleRate(band, root.Split("sr/"+link.name)),
			adapt.NewSNRTable(band, root.Split("tbl/"+link.name)),
			adapt.NewHybrid(band, root.Split("hy/"+link.name), 2),
		}
		traces := adapt.Replay(root.Split("replay/"+link.name), ch, band, adapters, 3000, 300)

		fmt.Printf("--- %s: mean SNR %.0f dB ---\n", link.name, ch.MeanSNR())
		fmt.Printf("%-12s  %10s  %9s  top rates used\n", "adapter", "Mbit/s", "of oracle")
		for _, tr := range traces {
			fmt.Printf("%-12s  %10.2f  %8.0f%%  %s\n",
				tr.Name, tr.MeanTput, tr.OracleFrac*100, topRates(band, tr.Selections))
		}
		fmt.Println()
	}
	fmt.Println("The thesis's argument (§4.5): with per-link SNR training, a table (or a")
	fmt.Println("table-restricted prober) matches broad probing while probing far fewer rates.")
}

// topRates summarizes the two most-used rates of a selection histogram.
func topRates(band phy.Band, sel []int) string {
	best, second := -1, -1
	for ri, n := range sel {
		if n == 0 {
			continue
		}
		if best < 0 || n > sel[best] {
			best, second = ri, best
		} else if second < 0 || n > sel[second] {
			second = ri
		}
	}
	if best < 0 {
		return "-"
	}
	out := fmt.Sprintf("%s (%d)", band.Rates[best].Name, sel[best])
	if second >= 0 {
		out += fmt.Sprintf(", %s (%d)", band.Rates[second].Name, sel[second])
	}
	return out
}
