// Scenariotour: the declarative-scenario workflow as a library user
// sees it — list the built-in catalog, parse a spec from JSON, compile
// it to generation options, and run the polling e2e harness to a
// converged per-scenario report (the same report the checked-in goldens
// pin).
//
//	go run ./examples/scenariotour
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"meshlab/internal/scenario"
	"meshlab/internal/scenario/e2e"
)

func main() {
	// The embedded catalog: every scenarios/*.json, by name.
	fmt.Println("built-in scenarios:")
	for _, name := range scenario.Names() {
		sp, err := scenario.Builtin(name)
		if err != nil {
			log.Fatal(err)
		}
		total, bg, n := sp.Datasets()
		fmt.Printf("  %-20s %2d networks, %2d datasets (bg %d, n %d)\n",
			name, sp.Fleet.Networks, total, bg, n)
	}
	fmt.Println()

	// A spec is just strict JSON; Parse validates every field and stamps
	// the sha256 that pins the scenario's identity in golden reports.
	raw := []byte(`{
		"version": 1,
		"name": "tour",
		"description": "a tiny two-network tour fleet",
		"seed": 11,
		"fleet": {
			"networks": 2,
			"env_mix": {"indoor": 2},
			"band_mix": {"bg": 1, "both": 1},
			"size": {"min": 3, "max": 6, "log_mean": 1.3, "log_std": 0.3}
		},
		"probe": {"duration_s": 1800, "interval_s": 300}
	}`)
	sp, err := scenario.Parse(raw, "tour.json")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %s (spec sha256 %s)\n", sp.Name, sp.SHA256)

	// Compilation is pure: equal specs always yield equal options, and
	// equal options generate byte-identical datasets.
	opts := sp.Options()
	fmt.Printf("compiled: seed %d, %d networks, probe %.0fs @ %.0fs\n\n",
		opts.Seed, opts.Fleet.NumNetworks, opts.Probe.Duration, opts.Probe.ReportInterval)

	// The e2e harness: synthesize once, start the streamed suite in the
	// background, poll until the atomically published report converges.
	dir, err := os.MkdirTemp("", "scenariotour")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	h := e2e.New(dir)
	dataset, err := h.Synthesize(sp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized %s\n", filepath.Base(dataset))

	run := h.Start(sp, dataset, e2e.Streamed())
	report, err := h.WaitConverged(run)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged: %s (%d bytes)\n\n", filepath.Base(run.Artifact), len(report))
	fmt.Print(string(report))
}
