// Quickstart: generate a small synthetic fleet, run three headline
// experiments (one per study area), and print the regenerated tables.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"meshlab"
)

func main() {
	// Everything is reproducible from one seed.
	fleet, err := meshlab.GenerateFleet(meshlab.QuickOptions(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d network datasets, %d probe sets, %d client logs\n\n",
		len(fleet.Networks), fleet.NumProbeSets(), len(fleet.Clients))

	analysis := meshlab.NewAnalysis(fleet)
	for _, id := range []string{"fig4.2", "fig5.1", "fig6.1", "fig7.4"} {
		res, err := analysis.Run(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(res.Format())
		fmt.Println()
	}

	fmt.Println("all experiment IDs:", meshlab.ExperimentIDs())
}
