#!/usr/bin/env bash
# check_doc_comments.sh — fail if any Go package lacks a godoc package
# comment: a comment line directly above the `package` clause in at least
# one of its non-test files. Libraries conventionally start "// Package
# <name> ...", commands "// Command <name> ..." or "// <Name> ..."; this
# check only demands that *some* doc comment is attached, which is what
# `go doc` surfaces.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for dir in $(find . -name '*.go' -not -name '*_test.go' -not -path './.git/*' -exec dirname {} \; | sort -u); do
  ok=0
  for f in "$dir"/*.go; do
    case "$f" in
    *_test.go) continue ;;
    esac
    # A doc comment is the comment line immediately preceding `package X`.
    if awk '
      /^package [A-Za-z_]/ { if (prev ~ /^\/\//) found = 1; exit }
      { prev = $0 }
      END { exit !found }
    ' "$f"; then
      ok=1
      break
    fi
  done
  if [ "$ok" = 0 ]; then
    echo "missing package doc comment: $dir" >&2
    fail=1
  fi
done
exit $fail
