#!/usr/bin/env bash
# Fails if any scenario golden is stale against its spec, or if a
# built-in scenario is missing its golden.
#
# Every golden report embeds the sha256 of the spec bytes it was
# generated from ("spec: version N sha256 <hex>", written by
# internal/scenario/e2e.Report). Editing scenarios/<name>.json without
# regenerating testdata/scenarios/<name>.golden leaves the old hash
# behind, and this check catches it. Regenerate with:
#
#   go test -run TestScenarioE2EGoldens -update .
#
# The reference scenario is exempt: it is guardrail-scale and carries no
# checked-in golden.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

for golden in testdata/scenarios/*.golden; do
    [ -e "$golden" ] || { echo "no goldens found under testdata/scenarios/" >&2; exit 1; }
    name=$(basename "$golden" .golden)
    spec="scenarios/$name.json"
    if [ ! -f "$spec" ]; then
        echo "STALE: $golden has no spec $spec (scenario removed or renamed?)" >&2
        fail=1
        continue
    fi
    want=$(sha256sum "$spec" | cut -d' ' -f1)
    if ! grep -q "^spec: version [0-9]* sha256 $want\$" "$golden"; then
        echo "STALE: $golden was not generated from the current $spec" >&2
        echo "  spec sha256 now: $want" >&2
        echo "  golden records:  $(grep -m1 '^spec: version' "$golden" || echo '(no spec line)')" >&2
        echo "  regenerate: go test -run TestScenarioE2EGoldens -update ." >&2
        fail=1
    fi
done

for spec in scenarios/*.json; do
    name=$(basename "$spec" .json)
    [ "$name" = reference ] && continue
    if [ ! -f "testdata/scenarios/$name.golden" ]; then
        echo "MISSING: built-in scenario $name has no golden (run: go test -run TestScenarioE2EGoldens -update .)" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "scenario goldens OK ($(ls testdata/scenarios/*.golden | wc -l) checked)"
