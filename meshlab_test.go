package meshlab

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"meshlab/internal/radio"
)

func TestEndToEndQuick(t *testing.T) {
	fleet, err := GenerateFleet(QuickOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.Validate(); err != nil {
		t.Fatal(err)
	}
	a := NewAnalysis(fleet)
	res, err := a.Run("fig5.1")
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "fig5.1" || len(res.Rows) == 0 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestExperimentIDsNonEmpty(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 20 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
}

func TestFleetIORoundTrip(t *testing.T) {
	fleet, err := GenerateFleet(QuickOptions(6))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFleet(&buf, fleet); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFleet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumProbeSets() != fleet.NumProbeSets() {
		t.Fatalf("probe sets changed across round trip: %d vs %d",
			got.NumProbeSets(), fleet.NumProbeSets())
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadFleet(t *testing.T) {
	fleet, err := GenerateFleet(QuickOptions(7))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fleet.jsonl")
	if err := SaveFleet(path, fleet); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFleet(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Networks) != len(fleet.Networks) {
		t.Fatal("network count changed across save/load")
	}
	if _, err := LoadFleet(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("loading a missing file should error")
	}
}

func TestOptionsPresets(t *testing.T) {
	q := QuickOptions(1)
	r := ReferenceOptions(1)
	if q.Fleet.NumNetworks >= r.Fleet.NumNetworks {
		t.Fatal("quick preset should be smaller than reference")
	}
	if r.Fleet.NumNetworks != 110 {
		t.Fatalf("reference fleet size %d, want the thesis's 110", r.Fleet.NumNetworks)
	}
}

func TestBinaryRoundTripViaFacade(t *testing.T) {
	fleet, err := GenerateFleet(QuickOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fleet.bin")
	if err := SaveFleet(path, fleet); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFleet(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumProbeSets() != fleet.NumProbeSets() {
		t.Fatal("binary round trip changed the dataset")
	}
	// The same LoadFleet must also read JSONL transparently.
	jpath := filepath.Join(t.TempDir(), "fleet.jsonl")
	if err := SaveFleet(jpath, fleet); err != nil {
		t.Fatal(err)
	}
	got2, err := LoadFleet(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if got2.NumProbeSets() != fleet.NumProbeSets() {
		t.Fatal("jsonl round trip changed the dataset")
	}
	// Binary should be much smaller.
	bi, _ := os.Stat(path)
	ji, _ := os.Stat(jpath)
	if bi.Size()*2 > ji.Size() {
		t.Fatalf("binary %d bytes should be well under JSONL %d", bi.Size(), ji.Size())
	}
}

func TestWriteFleetBinaryStream(t *testing.T) {
	fleet, err := GenerateFleet(QuickOptions(9))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFleetBinary(&buf, fleet); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFleet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Networks) != len(fleet.Networks) {
		t.Fatal("stream binary round trip failed")
	}
}

func TestLoadOrGenerateFleet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.bin")
	opts := QuickOptions(17)

	// Cold cache: synthesizes and writes the file.
	f1, hit, err := LoadOrGenerateFleet(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("cold cache reported a hit")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cache file not written: %v", err)
	}

	// Warm cache: loads the file, skipping synthesis.
	f2, hit, err := LoadOrGenerateFleet(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("warm cache missed")
	}
	if f2.Meta != f1.Meta || f2.NumProbeSets() != f1.NumProbeSets() {
		t.Fatal("cached fleet differs from generated fleet")
	}

	// Seed mismatch invalidates: regenerates and rewrites.
	other := QuickOptions(18)
	f3, hit, err := LoadOrGenerateFleet(path, other)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("seed mismatch should not hit the cache")
	}
	if f3.Meta.Seed != 18 {
		t.Fatalf("regenerated fleet has seed %d, want 18", f3.Meta.Seed)
	}
	if f4, hit, _ := LoadOrGenerateFleet(path, other); !hit || f4.Meta.Seed != 18 {
		t.Fatal("rewritten cache should hit for the new seed")
	}

	// Config mismatch (probe cadence) invalidates too.
	tweaked := QuickOptions(18)
	tweaked.Probe.ReportInterval = 600
	if _, hit, err := LoadOrGenerateFleet(path, tweaked); err != nil || hit {
		t.Fatalf("cadence mismatch should regenerate (hit=%v err=%v)", hit, err)
	}

	// SkipClients mismatch invalidates: a cache with client data cannot
	// stand in for a probe-only request.
	noClients := QuickOptions(18)
	noClients.Probe.ReportInterval = 600
	noClients.SkipClients = true
	f5, hit, err := LoadOrGenerateFleet(path, noClients)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("SkipClients mismatch should not hit the cache")
	}
	if len(f5.Clients) != 0 {
		t.Fatal("probe-only regeneration still has clients")
	}
}

func TestLoadOrGenerateFleetCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.bin")
	if err := os.WriteFile(path, []byte("not a fleet at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, hit, err := LoadOrGenerateFleet(path, QuickOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("corrupt cache should be regenerated, not hit")
	}
	if f.NumProbeSets() == 0 {
		t.Fatal("regenerated fleet is empty")
	}
	if f2, hit, _ := LoadOrGenerateFleet(path, QuickOptions(5)); !hit || f2.Meta.Seed != 5 {
		t.Fatal("regenerated cache should hit on the next run")
	}
}

func TestLoadOrGenerateFleetBypassesCacheForRadioParams(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.bin")
	opts := QuickOptions(5)
	opts.RadioParams = func(outdoor bool) radio.Params {
		return radio.DefaultParams(radio.Indoor)
	}
	if _, hit, err := LoadOrGenerateFleet(path, opts); err != nil || hit {
		t.Fatalf("RadioParams options must bypass the cache (hit=%v err=%v)", hit, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("RadioParams options must not write the cache file")
	}
}

// TestLoadOrGenerateFleetDetectsTopologyMismatch covers the case the
// metadata alone cannot: two configs with identical Meta (seed,
// durations, cadence) but different fleet populations must not share a
// cache entry.
func TestLoadOrGenerateFleetDetectsTopologyMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.bin")
	opts := QuickOptions(9)
	if _, _, err := LoadOrGenerateFleet(path, opts); err != nil {
		t.Fatal(err)
	}
	smaller := QuickOptions(9) // identical Meta...
	smaller.Fleet.NumNetworks = 11
	smaller.Fleet.NumIndoor = 6 // ...but one fewer indoor network
	f, hit, err := LoadOrGenerateFleet(path, smaller)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("fleet-config mismatch with identical Meta must not hit the cache")
	}
	if len(f.Clients) != 11 {
		t.Fatalf("regenerated fleet has %d client logs, want 11", len(f.Clients))
	}
	if _, hit, _ := LoadOrGenerateFleet(path, smaller); !hit {
		t.Fatal("rewritten cache should hit for the new config")
	}
}

// TestLoadOrGenerateFleetFailsFastOnUnwritablePath: an unusable cache
// path must error before synthesis, not after it.
func TestLoadOrGenerateFleetFailsFastOnUnwritablePath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "cache.bin")
	start := time.Now()
	if _, _, err := LoadOrGenerateFleet(path, QuickOptions(5)); err == nil {
		t.Fatal("unwritable cache path should error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("error took %v; should fail before synthesis", elapsed)
	}
}

// TestLoadOrGenerateFleetBypassesCacheForUnrecordedConfig: options the
// file format cannot record (probe aggregation depth, client mixture)
// must bypass the cache rather than risk serving a false hit.
func TestLoadOrGenerateFleetBypassesCacheForUnrecordedConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.bin")
	deeper := QuickOptions(5)
	deeper.Probe.ProbesPerRate = 40
	if _, hit, err := LoadOrGenerateFleet(path, deeper); err != nil || hit {
		t.Fatalf("ProbesPerRate override must bypass the cache (hit=%v err=%v)", hit, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("bypassed options must not write the cache file")
	}
	mixed := QuickOptions(5)
	mixed.Clients.ClientsPerAP = 2.5
	if _, hit, err := LoadOrGenerateFleet(path, mixed); err != nil || hit {
		t.Fatalf("client-mixture override must bypass the cache (hit=%v err=%v)", hit, err)
	}
	// Setting only the fields the cache does record stays cacheable.
	recorded := QuickOptions(5)
	recorded.Probe.ProbesPerRate = 20 // the package default, effectively unset
	if _, _, err := LoadOrGenerateFleet(path, recorded); err != nil {
		t.Fatal(err)
	}
	if _, hit, _ := LoadOrGenerateFleet(path, recorded); !hit {
		t.Fatal("default-equal config should still be cacheable")
	}
}

// TestLoadOrGenerateFleetWriteIsAtomic: a rewrite must not leave temp
// files behind, and the cache stays decodable after every rewrite.
func TestLoadOrGenerateFleetWriteIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.bin")
	if _, _, err := LoadOrGenerateFleet(path, QuickOptions(5)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadOrGenerateFleet(path, QuickOptions(6)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "cache.bin" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("cache dir should hold exactly cache.bin, got %v", names)
	}
	if f, err := LoadFleet(path); err != nil || f.Meta.Seed != 6 {
		t.Fatalf("rewritten cache unreadable or stale: %+v, %v", f, err)
	}
}

// TestLoadOrGenerateFleetRelativePath: a bare relative cache path must
// stage its temp file next to the destination (same filesystem) and end
// up world-readable like every other data file the tools write.
func TestLoadOrGenerateFleetRelativePath(t *testing.T) {
	t.Chdir(t.TempDir())
	if _, hit, err := LoadOrGenerateFleet("cache.bin", QuickOptions(5)); err != nil || hit {
		t.Fatalf("relative-path cold write failed (hit=%v err=%v)", hit, err)
	}
	info, err := os.Stat("cache.bin")
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o644 {
		t.Fatalf("cache mode %o, want 644", perm)
	}
	if _, hit, err := LoadOrGenerateFleet("cache.bin", QuickOptions(5)); err != nil || !hit {
		t.Fatalf("relative-path warm read failed (hit=%v err=%v)", hit, err)
	}
}

func TestLoadOrGenerateFleetRejectsDirectoryPath(t *testing.T) {
	dir := t.TempDir()
	start := time.Now()
	if _, _, err := LoadOrGenerateFleet(dir, QuickOptions(5)); err == nil {
		t.Fatal("a directory cache path should error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("error took %v; should fail before synthesis", elapsed)
	}
}
