package meshlab

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestEndToEndQuick(t *testing.T) {
	fleet, err := GenerateFleet(QuickOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.Validate(); err != nil {
		t.Fatal(err)
	}
	a := NewAnalysis(fleet)
	res, err := a.Run("fig5.1")
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "fig5.1" || len(res.Rows) == 0 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestExperimentIDsNonEmpty(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 20 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
}

func TestFleetIORoundTrip(t *testing.T) {
	fleet, err := GenerateFleet(QuickOptions(6))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFleet(&buf, fleet); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFleet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumProbeSets() != fleet.NumProbeSets() {
		t.Fatalf("probe sets changed across round trip: %d vs %d",
			got.NumProbeSets(), fleet.NumProbeSets())
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadFleet(t *testing.T) {
	fleet, err := GenerateFleet(QuickOptions(7))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fleet.jsonl")
	if err := SaveFleet(path, fleet); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFleet(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Networks) != len(fleet.Networks) {
		t.Fatal("network count changed across save/load")
	}
	if _, err := LoadFleet(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("loading a missing file should error")
	}
}

func TestOptionsPresets(t *testing.T) {
	q := QuickOptions(1)
	r := ReferenceOptions(1)
	if q.Fleet.NumNetworks >= r.Fleet.NumNetworks {
		t.Fatal("quick preset should be smaller than reference")
	}
	if r.Fleet.NumNetworks != 110 {
		t.Fatalf("reference fleet size %d, want the thesis's 110", r.Fleet.NumNetworks)
	}
}

func TestBinaryRoundTripViaFacade(t *testing.T) {
	fleet, err := GenerateFleet(QuickOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fleet.bin")
	if err := SaveFleet(path, fleet); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFleet(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumProbeSets() != fleet.NumProbeSets() {
		t.Fatal("binary round trip changed the dataset")
	}
	// The same LoadFleet must also read JSONL transparently.
	jpath := filepath.Join(t.TempDir(), "fleet.jsonl")
	if err := SaveFleet(jpath, fleet); err != nil {
		t.Fatal(err)
	}
	got2, err := LoadFleet(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if got2.NumProbeSets() != fleet.NumProbeSets() {
		t.Fatal("jsonl round trip changed the dataset")
	}
	// Binary should be much smaller.
	bi, _ := os.Stat(path)
	ji, _ := os.Stat(jpath)
	if bi.Size()*2 > ji.Size() {
		t.Fatalf("binary %d bytes should be well under JSONL %d", bi.Size(), ji.Size())
	}
}

func TestWriteFleetBinaryStream(t *testing.T) {
	fleet, err := GenerateFleet(QuickOptions(9))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFleetBinary(&buf, fleet); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFleet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Networks) != len(fleet.Networks) {
		t.Fatal("stream binary round trip failed")
	}
}
