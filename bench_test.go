package meshlab

// The bench harness regenerates every table and figure of the thesis's
// evaluation, one benchmark per artifact (ExperimentIDs lists the index;
// PERF.md records the optimization trajectory). Each iteration runs the
// experiment end to end against a shared quick-scale fleet, so the
// reported ns/op is the cost of regenerating that artifact from raw
// probe/client data (with the context's memoized routing solutions reset
// each iteration via a fresh Analysis).
//
// Run with:
//
//	go test -bench=. -benchmem
import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"meshlab/internal/experiments"
	"meshlab/internal/phy"
	"meshlab/internal/rng"
	"meshlab/internal/routing"
	"meshlab/internal/snr"
)

var benchOnce sync.Once
var benchFleet *Fleet

func benchmarkFleet(b testing.TB) *Fleet {
	benchOnce.Do(func() {
		f, err := GenerateFleet(QuickOptions(20100521)) // thesis submission date
		if err != nil {
			panic(err)
		}
		benchFleet = f
	})
	if benchFleet == nil {
		b.Fatal("no fleet")
	}
	return benchFleet
}

// benchExperiment runs one artifact's regeneration per iteration.
func benchExperiment(b *testing.B, id string) {
	fleet := benchmarkFleet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewAnalysis(fleet)
		if _, err := a.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

// Chapter 3 — the data.

func BenchmarkFig3_1(b *testing.B) { benchExperiment(b, "fig3.1") }

// Chapter 4 — bit rate analysis.

func BenchmarkFig4_1(b *testing.B)   { benchExperiment(b, "fig4.1") }
func BenchmarkFig4_2(b *testing.B)   { benchExperiment(b, "fig4.2") }
func BenchmarkFig4_3(b *testing.B)   { benchExperiment(b, "fig4.3") }
func BenchmarkFig4_4(b *testing.B)   { benchExperiment(b, "fig4.4") }
func BenchmarkFig4_5(b *testing.B)   { benchExperiment(b, "fig4.5") }
func BenchmarkFig4_6(b *testing.B)   { benchExperiment(b, "fig4.6") }
func BenchmarkTable4_1(b *testing.B) { benchExperiment(b, "tab4.1") }

// Chapter 5 — opportunistic routing.

func BenchmarkFig5_1(b *testing.B) { benchExperiment(b, "fig5.1") }
func BenchmarkFig5_2(b *testing.B) { benchExperiment(b, "fig5.2") }
func BenchmarkFig5_3(b *testing.B) { benchExperiment(b, "fig5.3") }
func BenchmarkFig5_4(b *testing.B) { benchExperiment(b, "fig5.4") }
func BenchmarkFig5_5(b *testing.B) { benchExperiment(b, "fig5.5") }

// Chapter 6 — hidden triples.

func BenchmarkFig6_1(b *testing.B) { benchExperiment(b, "fig6.1") }
func BenchmarkFig6_2(b *testing.B) { benchExperiment(b, "fig6.2") }
func BenchmarkSec6_3(b *testing.B) { benchExperiment(b, "sec6.3") }

// Chapter 7 — mobility.

func BenchmarkFig7_1(b *testing.B) { benchExperiment(b, "fig7.1") }
func BenchmarkFig7_2(b *testing.B) { benchExperiment(b, "fig7.2") }
func BenchmarkFig7_3(b *testing.B) { benchExperiment(b, "fig7.3") }
func BenchmarkFig7_4(b *testing.B) { benchExperiment(b, "fig7.4") }
func BenchmarkFig7_5(b *testing.B) { benchExperiment(b, "fig7.5") }

// Ablations — design-choice validation (see the internal/experiments
// ablation runners).

func BenchmarkAblationOffsets(b *testing.B)   { benchExperiment(b, "abl4.off") }
func BenchmarkAblationBursts(b *testing.B)    { benchExperiment(b, "abl4.burst") }
func BenchmarkAblationSymmetry(b *testing.B)  { benchExperiment(b, "abl5.sym") }
func BenchmarkAblationThreshold(b *testing.B) { benchExperiment(b, "abl6.t") }

// Extensions — ETT routing and MAC-level hidden-terminal cost.

func BenchmarkExtTopK(b *testing.B) { benchExperiment(b, "ext4.topk") }
func BenchmarkExtETT(b *testing.B)  { benchExperiment(b, "ext5.ett") }
func BenchmarkExtMAC(b *testing.B)  { benchExperiment(b, "ext6.mac") }

// End-to-end substrate costs.

// BenchmarkGenerateQuick measures fleet synthesis at several worker-pool
// sizes; the output is byte-identical at all of them (pinned by
// synth.TestGenerateParallelMatchesSerial), so the sub-benchmarks differ
// only in wall clock.
func BenchmarkGenerateQuick(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := QuickOptions(20100521)
			opts.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := GenerateFleet(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// §4 hot-path microbenchmarks over the shared quick fleet's b/g samples.

func benchSamplesBG(b *testing.B) []snr.Sample {
	samples, err := snr.Flatten(benchmarkFleet(b).ByBand("bg"))
	if err != nil {
		b.Fatal(err)
	}
	if len(samples) == 0 {
		b.Fatal("no b/g samples")
	}
	return samples
}

func BenchmarkFlatten(b *testing.B) {
	nets := benchmarkFleet(b).ByBand("bg")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snr.Flatten(nets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPenalty(b *testing.B) {
	samples := benchSamplesBG(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = snr.Penalty(samples, len(phy.BandBG.Rates), snr.Scopes)
	}
}

func BenchmarkThroughputVsSNR(b *testing.B) {
	samples := benchSamplesBG(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = snr.ThroughputVsSNR(samples, len(phy.BandBG.Rates), 25)
	}
}

func BenchmarkCoverage(b *testing.B) {
	samples := benchSamplesBG(b)
	tbl := snr.Train(samples, len(phy.BandBG.Rates), snr.Link)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tbl.Coverage(8)
	}
}

func BenchmarkRunAllExperiments(b *testing.B) {
	fleet := benchmarkFleet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewAnalysis(fleet).RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAllExperimentsParallel is the parallel counterpart of
// BenchmarkRunAllExperiments: same work, fanned across GOMAXPROCS
// workers. On a single core it should match the serial run; on multicore
// it should scale with the worker pool.
func BenchmarkRunAllExperimentsParallel(b *testing.B) {
	fleet := benchmarkFleet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewAnalysis(fleet).RunAllParallel(0); err != nil {
			b.Fatal(err)
		}
	}
}

// streamingDataset writes the shared bench fleet (with the flat-sample
// section) to a temp file for the streaming-suite benchmarks and tests.
func streamingDataset(b testing.TB) string {
	path := filepath.Join(b.TempDir(), "fleet.bin")
	if err := SaveFleetWithSamples(path, benchmarkFleet(b)); err != nil {
		b.Fatal(err)
	}
	return path
}

// BenchmarkRunAllStreaming is the full suite through the single-pass
// streaming walk (decode + derive + finalize per iteration), the
// counterpart of BenchmarkRunAllExperimentsParallel for the -dataset
// path; the PERF.md PR 4 tables track it against the materialized run.
func BenchmarkRunAllStreaming(b *testing.B) {
	path := streamingDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := StreamFleet(path, StreamOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSec4ChunkedPeakHeap runs the §4 sample-only population the
// -sec4 way — chunked sample groups through incremental accumulators —
// sampling the live heap mid-walk. The reported peak-live-B metric is
// the path's memory bound: count/histogram tables plus one in-flight
// group, independent of sample count. Compare
// BenchmarkSec4MaterializedPeakHeap.
func BenchmarkSec4ChunkedPeakHeap(b *testing.B) {
	path := streamingDataset(b)
	ids := SampleExperimentIDs()
	var peak uint64
	for i := 0; i < b.N; i++ {
		base := liveHeap()
		run, err := experiments.NewSampleRun(ids)
		if err != nil {
			b.Fatal(err)
		}
		groups := 0
		err = EachSampleGroup(path, 2, func(band, _ string, samples []snr.Sample) error {
			if err := run.ObserveGroup(band, samples); err != nil {
				return err
			}
			groups++
			if groups%5 == 0 {
				if h := liveHeap() - base; h > peak {
					peak = h
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		results, err := run.Finalize()
		if err != nil {
			b.Fatal(err)
		}
		if h := liveHeap() - base; h > peak {
			peak = h
		}
		runtime.KeepAlive(results)
	}
	b.ReportMetric(float64(peak), "peak-live-B")
}

// BenchmarkSec4MaterializedPeakHeap is the pre-chunked §4 path for
// comparison: materialize every sample, then analyze. Its peak live heap
// scales with sample count.
func BenchmarkSec4MaterializedPeakHeap(b *testing.B) {
	path := streamingDataset(b)
	var peak uint64
	for i := 0; i < b.N; i++ {
		base := liveHeap()
		samples, err := LoadSamples(path)
		if err != nil {
			b.Fatal(err)
		}
		a := NewSampleAnalysis(samples)
		for _, id := range SampleExperimentIDs() {
			if _, err := a.Run(id); err != nil {
				b.Fatal(err)
			}
		}
		if h := liveHeap() - base; h > peak {
			peak = h
		}
		runtime.KeepAlive(samples)
	}
	b.ReportMetric(float64(peak), "peak-live-B")
}

// liveHeap forces a full collection and returns the surviving heap bytes.
func liveHeap() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestStreamingDoesNotMaterializeFleet pins the streamed path's memory
// contract three ways: structurally (the pipeline never held more than
// its bounded window of decoded networks), by heap sample against the
// materialized fleet, and — for the chunked §4 path — by heap sample
// against the materialized flat samples: a streamed run must leave far
// less live than either, or the walk (or the sample-group plumbing) is
// retaining what it claims to release.
func TestStreamingDoesNotMaterializeFleet(t *testing.T) {
	path := streamingDataset(t)

	// Warm the process-wide caches (the ablation experiments memoize their
	// own small fleets) so the measured delta is the run's working state,
	// not one-time process state.
	if _, _, err := StreamFleet(path, StreamOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}

	base := int64(liveHeap())
	results, sum, err := StreamFleet(path, StreamOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	afterStream := int64(liveHeap())

	fleet, err := LoadFleet(path)
	if err != nil {
		t.Fatal(err)
	}
	afterLoad := int64(liveHeap())

	samples, err := LoadSamples(path)
	if err != nil {
		t.Fatal(err)
	}
	afterSamples := int64(liveHeap())

	if sum.MaxLiveNetworks >= sum.Networks || sum.MaxLiveNetworks > 2+2 {
		t.Fatalf("streamed walk held %d of %d networks at once; the window should be ≤ workers+2",
			sum.MaxLiveNetworks, sum.Networks)
	}
	// At least one group per network dataset; huge networks may stream as
	// several link-aligned sub-chunks (wire.SampleGroups).
	if sum.SampleGroups < sum.Networks {
		t.Fatalf("streamed %d sample groups for %d network datasets; the section stores at least one per network",
			sum.SampleGroups, sum.Networks)
	}
	streamBytes := afterStream - base
	fleetBytes := afterLoad - afterStream
	samplesBytes := afterSamples - afterLoad
	if fleetBytes < 1<<20 {
		t.Fatalf("materialized fleet only added %d live bytes; the heap comparison is meaningless", fleetBytes)
	}
	if streamBytes >= fleetBytes {
		t.Fatalf("streamed run left %d bytes live, not less than the %d-byte materialized fleet — is the walk retaining networks?",
			streamBytes, fleetBytes)
	}
	if samplesBytes < 1<<18 {
		t.Fatalf("materialized samples only added %d live bytes; the chunked comparison is meaningless", samplesBytes)
	}
	if streamBytes >= samplesBytes {
		t.Fatalf("streamed run left %d bytes live, not less than the %d-byte materialized samples — is the chunked §4 path retaining sample groups?",
			streamBytes, samplesBytes)
	}
	t.Logf("live heap: streamed suite %d KB vs materialized fleet %d KB vs materialized samples %d KB (window %d/%d networks, %d sample groups)",
		streamBytes>>10, fleetBytes>>10, samplesBytes>>10, sum.MaxLiveNetworks, sum.Networks, sum.SampleGroups)
	runtime.KeepAlive(results)
	runtime.KeepAlive(fleet)
	runtime.KeepAlive(samples)
}

// TestStreamingBenchFixture keeps the bench fixture honest: the dataset
// the streaming benchmark walks must round-trip the bench fleet.
func TestStreamingBenchFixture(t *testing.T) {
	path := streamingDataset(t)
	info, err := os.Stat(path)
	if err != nil || info.Size() == 0 {
		t.Fatalf("bench dataset not written: %v", err)
	}
	f, err := LoadFleet(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumProbeSets() != benchmarkFleet(t).NumProbeSets() {
		t.Fatal("bench dataset decoded differently from the bench fleet")
	}
}

// Routing hot-path microbenchmarks (the §5 core the experiment suite
// leans on; see PERF.md for the before/after trajectory).

// benchMatrix builds a deterministic sparse 50-node success matrix with
// mild asymmetry, the shape SuccessMatrices produces for a large network.
func benchMatrix() routing.Matrix {
	const n = 50
	r := rng.New(7)
	m := routing.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Bool(0.3) {
				continue // out of radio range
			}
			base := 0.1 + 0.85*r.Float64()
			m.Set(i, j, base)
			m.Set(j, i, base*0.9)
		}
	}
	return m
}

func BenchmarkAllPairs(b *testing.B) {
	m := benchMatrix()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = routing.AllPairs(m, routing.ETX1)
	}
}

func BenchmarkExORToDest(b *testing.B) {
	m := benchMatrix()
	etx := routing.AllPairs(m, routing.ETX1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = routing.ExORToDest(m, etx, 0)
	}
}
