package meshlab

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"meshlab/internal/wire"
)

// TestLoadOrGenerateFleetUpgradesLegacyCache: a valid cache written in
// the legacy MLF1 framing must hit (no resynthesis) and be rewritten in
// the current format with the flat-sample section, so the next run
// returns samples.
func TestLoadOrGenerateFleetUpgradesLegacyCache(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.bin")
	opts := QuickOptions(31)
	fleet, err := GenerateFleet(opts)
	if err != nil {
		t.Fatal(err)
	}
	file, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteV1(file, fleet); err != nil {
		t.Fatal(err)
	}
	if err := file.Close(); err != nil {
		t.Fatal(err)
	}

	f, samples, hit, err := LoadOrGenerateFleetSamples(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("a valid legacy cache must hit, not resynthesize")
	}
	if len(samples) == 0 {
		t.Fatal("the upgrade rewrite should return the samples it derived")
	}
	if f.NumProbeSets() != fleet.NumProbeSets() {
		t.Fatal("legacy cache decoded differently")
	}
	head := make([]byte, 4)
	fh, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.Read(head); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	if !bytes.Equal(head, wire.Magic2[:]) {
		t.Fatalf("cache not upgraded: magic %q", head)
	}

	// The upgraded cache now serves samples.
	_, samples, hit, err = LoadOrGenerateFleetSamples(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || len(samples) == 0 {
		t.Fatalf("upgraded cache should hit with samples (hit=%v, bands=%d)", hit, len(samples))
	}
}

// TestLoadOrGenerateFleetSamplesWarm: the cold write stores the sample
// section; the warm load returns it, and priming an Analysis with it
// yields byte-identical experiment output to computing from scratch.
func TestLoadOrGenerateFleetSamplesWarm(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.bin")
	opts := QuickOptions(32)
	fleet, _, hit, err := LoadOrGenerateFleetSamples(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("cold cache reported a hit")
	}
	warm, samples, hit, err := LoadOrGenerateFleetSamples(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("warm cache missed")
	}
	if len(samples) == 0 {
		t.Fatal("warm load returned no samples despite the section")
	}

	// Oracle: a primed analysis and a from-scratch analysis agree on a
	// §4-heavy experiment, byte for byte.
	primed := NewAnalysis(warm)
	for band, s := range samples {
		primed.PrimeSamples(band, s)
	}
	scratch := NewAnalysis(fleet)
	for _, id := range []string{"fig4.1", "fig4.4", "fig4.5"} {
		a, err := primed.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := scratch.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		if a.Format() != b.Format() {
			t.Fatalf("%s differs between primed and from-scratch analysis", id)
		}
	}
}

// TestLoadFleetSamples: .bin files round-trip the sample section through
// the file facade; plain binary and JSONL files return nil samples.
func TestLoadFleetSamples(t *testing.T) {
	fleet, err := GenerateFleet(QuickOptions(33))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	with := filepath.Join(dir, "with.bin")
	if err := SaveFleetWithSamples(with, fleet); err != nil {
		t.Fatal(err)
	}
	f, samples, err := LoadFleetSamples(with)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumProbeSets() != fleet.NumProbeSets() || len(samples) == 0 {
		t.Fatalf("sample-carrying file: %d probe sets, %d sample bands", f.NumProbeSets(), len(samples))
	}

	plain := filepath.Join(dir, "plain.bin")
	if err := SaveFleet(plain, fleet); err != nil {
		t.Fatal(err)
	}
	if _, samples, err := LoadFleetSamples(plain); err != nil || samples != nil {
		t.Fatalf("plain binary should load with nil samples (err %v)", err)
	}

	jsonl := filepath.Join(dir, "fleet.jsonl")
	if err := SaveFleet(jsonl, fleet); err != nil {
		t.Fatal(err)
	}
	if _, samples, err := LoadFleetSamples(jsonl); err != nil || samples != nil {
		t.Fatalf("JSONL should load with nil samples (err %v)", err)
	}

	// The section needs the binary format; a JSONL path is rejected.
	if err := SaveFleetWithSamples(filepath.Join(dir, "nope.jsonl"), fleet); err == nil {
		t.Fatal("SaveFleetWithSamples should reject a non-.bin path")
	}
}
