package meshlab

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"meshlab/internal/snr"
	"meshlab/internal/wire"
)

// TestLoadOrGenerateFleetUpgradesLegacyCache: a valid cache written in
// the legacy MLF1 framing must hit (no resynthesis) and be rewritten in
// the current format with the flat-sample section, so the next run
// returns samples.
func TestLoadOrGenerateFleetUpgradesLegacyCache(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.bin")
	opts := QuickOptions(31)
	fleet, err := GenerateFleet(opts)
	if err != nil {
		t.Fatal(err)
	}
	file, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteV1(file, fleet); err != nil {
		t.Fatal(err)
	}
	if err := file.Close(); err != nil {
		t.Fatal(err)
	}

	f, samples, hit, err := LoadOrGenerateFleetSamples(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("a valid legacy cache must hit, not resynthesize")
	}
	if len(samples) == 0 {
		t.Fatal("the upgrade rewrite should return the samples it derived")
	}
	if f.NumProbeSets() != fleet.NumProbeSets() {
		t.Fatal("legacy cache decoded differently")
	}
	head := make([]byte, 4)
	fh, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.Read(head); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	if !bytes.Equal(head, wire.Magic2[:]) {
		t.Fatalf("cache not upgraded: magic %q", head)
	}

	// The upgraded cache now serves samples.
	_, samples, hit, err = LoadOrGenerateFleetSamples(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || len(samples) == 0 {
		t.Fatalf("upgraded cache should hit with samples (hit=%v, bands=%d)", hit, len(samples))
	}
}

// TestLoadOrGenerateFleetSamplesWarm: the cold write stores the sample
// section; the warm load returns it, and priming an Analysis with it
// yields byte-identical experiment output to computing from scratch.
func TestLoadOrGenerateFleetSamplesWarm(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.bin")
	opts := QuickOptions(32)
	fleet, _, hit, err := LoadOrGenerateFleetSamples(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("cold cache reported a hit")
	}
	warm, samples, hit, err := LoadOrGenerateFleetSamples(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("warm cache missed")
	}
	if len(samples) == 0 {
		t.Fatal("warm load returned no samples despite the section")
	}

	// Oracle: a primed analysis and a from-scratch analysis agree on a
	// §4-heavy experiment, byte for byte.
	primed := NewAnalysis(warm)
	for band, s := range samples {
		primed.PrimeSamples(band, s)
	}
	scratch := NewAnalysis(fleet)
	for _, id := range []string{"fig4.1", "fig4.4", "fig4.5"} {
		a, err := primed.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := scratch.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		if a.Format() != b.Format() {
			t.Fatalf("%s differs between primed and from-scratch analysis", id)
		}
	}
}

// TestLoadFleetSamples: .bin files round-trip the sample section through
// the file facade; plain binary and JSONL files return nil samples.
func TestLoadFleetSamples(t *testing.T) {
	fleet, err := GenerateFleet(QuickOptions(33))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	with := filepath.Join(dir, "with.bin")
	if err := SaveFleetWithSamples(with, fleet); err != nil {
		t.Fatal(err)
	}
	f, samples, err := LoadFleetSamples(with)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumProbeSets() != fleet.NumProbeSets() || len(samples) == 0 {
		t.Fatalf("sample-carrying file: %d probe sets, %d sample bands", f.NumProbeSets(), len(samples))
	}

	plain := filepath.Join(dir, "plain.bin")
	if err := SaveFleet(plain, fleet); err != nil {
		t.Fatal(err)
	}
	if _, samples, err := LoadFleetSamples(plain); err != nil || samples != nil {
		t.Fatalf("plain binary should load with nil samples (err %v)", err)
	}

	jsonl := filepath.Join(dir, "fleet.jsonl")
	if err := SaveFleet(jsonl, fleet); err != nil {
		t.Fatal(err)
	}
	if _, samples, err := LoadFleetSamples(jsonl); err != nil || samples != nil {
		t.Fatalf("JSONL should load with nil samples (err %v)", err)
	}

	// The section needs the binary format; a JSONL path is rejected.
	if err := SaveFleetWithSamples(filepath.Join(dir, "nope.jsonl"), fleet); err == nil {
		t.Fatal("SaveFleetWithSamples should reject a non-.bin path")
	}
}

// TestStreamFleetMatchesMaterialized is the meshlab-level oracle for the
// streaming suite: the single-pass run over a binary file (with and
// without the flat-sample section) must emit results byte-identical to
// the materialized parallel runner, and must report honest walk
// accounting.
func TestStreamFleetMatchesMaterialized(t *testing.T) {
	fleet, err := GenerateFleet(QuickOptions(34))
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewAnalysis(fleet).RunAllParallel(0)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.bin")
	if err := SaveFleet(plain, fleet); err != nil {
		t.Fatal(err)
	}
	sampled := filepath.Join(dir, "sampled.bin")
	if err := SaveFleetWithSamples(sampled, fleet); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		path        string
		flatSamples bool
	}{{plain, false}, {sampled, true}} {
		results, sum, err := StreamFleet(tc.path, StreamOptions{Workers: 3})
		if err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		if len(results) != len(want) {
			t.Fatalf("%s: %d results vs %d", tc.path, len(results), len(want))
		}
		for i := range want {
			if g, w := results[i].Format(), want[i].Format(); g != w {
				t.Fatalf("%s: %s diverged from materialized run:\n--- stream ---\n%s\n--- memory ---\n%s",
					tc.path, want[i].ID, g, w)
			}
		}
		if sum.FlatSamples != tc.flatSamples {
			t.Fatalf("%s: FlatSamples = %v, want %v", tc.path, sum.FlatSamples, tc.flatSamples)
		}
		if sum.Networks != len(fleet.Networks) || sum.ProbeSets != fleet.NumProbeSets() {
			t.Fatalf("%s: summary %d networks/%d probe sets, fleet has %d/%d",
				tc.path, sum.Networks, sum.ProbeSets, len(fleet.Networks), fleet.NumProbeSets())
		}
		if sum.NetworksBG != len(fleet.ByBand("bg")) || sum.NetworksN != len(fleet.ByBand("n")) {
			t.Fatalf("%s: band split %d/%d wrong", tc.path, sum.NetworksBG, sum.NetworksN)
		}
		if sum.MaxLiveNetworks <= 0 || sum.MaxLiveNetworks >= sum.Networks {
			t.Fatalf("%s: max live networks %d of %d — the walk is not bounded", tc.path, sum.MaxLiveNetworks, sum.Networks)
		}
	}
}

// TestStreamFleetValidates: the validating walk accepts a matching cache
// and rejects metadata or topology divergence with ErrCacheMismatch.
func TestStreamFleetValidates(t *testing.T) {
	opts := QuickOptions(35)
	fleet, err := GenerateFleet(opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cache.bin")
	if err := SaveFleetWithSamples(path, fleet); err != nil {
		t.Fatal(err)
	}

	if _, _, err := StreamFleet(path, StreamOptions{Validate: &opts}); err != nil {
		t.Fatalf("matching cache rejected: %v", err)
	}

	wrongSeed := QuickOptions(36)
	if _, _, err := StreamFleet(path, StreamOptions{Validate: &wrongSeed}); !errors.Is(err, ErrCacheMismatch) {
		t.Fatalf("mismatched seed: got %v, want ErrCacheMismatch", err)
	}

	wrongFleet := opts
	wrongFleet.Fleet.MinSize += 2
	if _, _, err := StreamFleet(path, StreamOptions{Validate: &wrongFleet}); !errors.Is(err, ErrCacheMismatch) {
		t.Fatalf("mismatched topology: got %v, want ErrCacheMismatch", err)
	}
}

// TestStreamFleetNotStreamable: JSON-lines input is rejected with the
// sentinel the CLIs use to fall back (or print guidance).
func TestStreamFleetNotStreamable(t *testing.T) {
	fleet, err := GenerateFleet(QuickOptions(37))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fleet.jsonl")
	if err := SaveFleet(path, fleet); err != nil {
		t.Fatal(err)
	}
	if _, _, err := StreamFleet(path, StreamOptions{}); !errors.Is(err, ErrNotStreamable) {
		t.Fatalf("JSONL: got %v, want ErrNotStreamable", err)
	}
	if _, err := LoadSamples(path); !errors.Is(err, ErrNotStreamable) {
		t.Fatalf("LoadSamples on JSONL: got %v, want ErrNotStreamable", err)
	}
}

// TestSampleAnalysis: LoadSamples + NewSampleAnalysis reproduce the §4
// tables byte-identically to a full in-memory analysis, and the
// non-sample experiments fail instead of fabricating empty tables.
func TestSampleAnalysis(t *testing.T) {
	fleet, err := GenerateFleet(QuickOptions(38))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fleet.bin")
	if err := SaveFleetWithSamples(path, fleet); err != nil {
		t.Fatal(err)
	}
	samples, err := LoadSamples(path)
	if err != nil {
		t.Fatal(err)
	}
	bare := NewSampleAnalysis(samples)
	full := NewAnalysis(fleet)
	for _, id := range SampleExperimentIDs() {
		if !SampleOnlyExperiment(id) {
			t.Fatalf("%s listed but not sample-only", id)
		}
		a, err := bare.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		b, err := full.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		if a.Format() != b.Format() {
			t.Fatalf("%s diverges between sample analysis and full analysis", id)
		}
	}
	if _, err := bare.Run("fig3.1"); err == nil {
		t.Fatal("a fleet experiment should fail on a sample-only analysis")
	}
}

// TestEachSampleGroupMatchesLoadSamples: the chunked group walk carries
// exactly the samples LoadSamples materializes, per band and in order,
// from both a sample-carrying and a section-less binary file.
func TestEachSampleGroupMatchesLoadSamples(t *testing.T) {
	fleet, err := GenerateFleet(QuickOptions(39))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	sampled := filepath.Join(dir, "sampled.bin")
	if err := SaveFleetWithSamples(sampled, fleet); err != nil {
		t.Fatal(err)
	}
	plain := filepath.Join(dir, "plain.bin")
	if err := SaveFleet(plain, fleet); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{sampled, plain} {
		want, err := LoadSamples(path)
		if err != nil {
			t.Fatal(err)
		}
		cat := FleetSamples{}
		groups := 0
		if err := EachSampleGroup(path, 2, func(band, net string, samples []snr.Sample) error {
			groups++
			for i := range samples {
				if samples[i].Net != net {
					return fmt.Errorf("group %s carries sample for %s", net, samples[i].Net)
				}
			}
			if len(samples) > 0 {
				cat[band] = append(cat[band], samples...)
			}
			return nil
		}); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if groups != len(fleet.Networks) {
			t.Fatalf("%s: %d groups, fleet has %d network datasets", path, groups, len(fleet.Networks))
		}
		if !reflect.DeepEqual(cat, want) {
			t.Fatalf("%s: concatenated groups diverge from LoadSamples", path)
		}
	}
	if err := EachSampleGroup(filepath.Join(dir, "missing.bin"), 1, nil); err == nil {
		t.Fatal("missing file should error")
	}
}

// TestStreamSampleExperimentsMatchesAnalysis: the fleet-less chunked §4
// engine (meshanalyze -sec4) reproduces every sample-only table
// byte-identically to the full in-memory analysis, at any worker count.
func TestStreamSampleExperimentsMatchesAnalysis(t *testing.T) {
	fleet, err := GenerateFleet(QuickOptions(40))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fleet.bin")
	if err := SaveFleetWithSamples(path, fleet); err != nil {
		t.Fatal(err)
	}
	full := NewAnalysis(fleet)
	ids := SampleExperimentIDs()
	for _, workers := range []int{1, 3} {
		results, err := StreamSampleExperiments(path, ids, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != len(ids) {
			t.Fatalf("%d results for %d ids", len(results), len(ids))
		}
		for i, id := range ids {
			want, err := full.Run(id)
			if err != nil {
				t.Fatal(err)
			}
			if results[i].Format() != want.Format() {
				t.Fatalf("workers=%d: %s diverges from the in-memory analysis", workers, id)
			}
		}
	}
	// Fleet-needing experiments are refused up front.
	if _, err := StreamSampleExperiments(path, []string{"fig5.1"}, 1); err == nil {
		t.Fatal("a fleet experiment should be refused by the sample run")
	}
}

// TestStreamFleetMaterializeSamplesKnob: the explicit opt-out of chunked
// sample handling still emits byte-identical results — it only changes
// what stays resident.
func TestStreamFleetMaterializeSamplesKnob(t *testing.T) {
	fleet, err := GenerateFleet(QuickOptions(41))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fleet.bin")
	if err := SaveFleetWithSamples(path, fleet); err != nil {
		t.Fatal(err)
	}
	chunked, _, err := StreamFleet(path, StreamOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	materialized, _, err := StreamFleet(path, StreamOptions{Workers: 2, MaterializeSamples: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range chunked {
		if chunked[i].Format() != materialized[i].Format() {
			t.Fatalf("%s diverges under MaterializeSamples", chunked[i].ID)
		}
	}
}
