// Package meshlab reproduces the measurement study "Measurement and
// Analysis of Real-World 802.11 Mesh Networks" (LaCurts, MIT, 2010; the
// thesis version of the IMC 2010 paper by LaCurts & Balakrishnan).
//
// The original study analyzed 24 hours of inter-AP probe data from 1407
// APs in 110 production Meraki mesh networks plus an 11-hour client
// association snapshot. That data is proprietary, so meshlab regenerates
// its statistical structure from a calibrated physical model (the
// internal/radio and internal/synth packages) and re-implements the full
// analysis pipeline:
//
//   - §4 SNR-based bit rate adaptation: look-up tables at four training
//     scopes, throughput penalties, online table strategies.
//   - §5 opportunistic routing: ETX1/ETX2 shortest paths versus an
//     idealized ExOR cost recursion.
//   - §6 hidden triples and rate-dependent range.
//   - §7 client mobility: prevalence and persistence.
//
// The typical flow is: generate (or load) a Fleet, wrap it in an Analysis,
// and run experiments by their paper artifact ID:
//
//	fleet, err := meshlab.GenerateFleet(meshlab.QuickOptions(42))
//	...
//	a := meshlab.NewAnalysis(fleet)
//	res, err := a.Run("fig5.1")
//	fmt.Print(res.Format())
//
// The full suite can run serially (a.RunAll) or fanned across a worker
// pool (a.RunAllParallel(0) uses GOMAXPROCS workers); both produce the
// same results in the same paper order — the analysis context memoizes
// derived data per key, so execution order never changes a table. See
// also PERF.md for the optimization inventory and benchmarks.
//
// Every table and figure of the thesis's evaluation has a runner; see
// ExperimentIDs and EXPERIMENTS.md.
package meshlab

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"meshlab/internal/dataset"
	"meshlab/internal/experiments"
	"meshlab/internal/synth"
	"meshlab/internal/wire"
)

// Fleet is a synthetic dataset: per-network probe data (§3.1) and
// aggregate client data (§3.2).
type Fleet = dataset.Fleet

// Options configures fleet generation; see QuickOptions and
// ReferenceOptions for calibrated presets.
type Options = synth.Options

// Analysis wraps a fleet with memoized derived state and runs experiments
// against it. Run, RunAll, and RunAllParallel are safe for concurrent use:
// memoization is sharded per derived value, so parallel experiments only
// block each other when they need the same computation.
type Analysis = experiments.Context

// Result is one regenerated table or figure.
type Result = experiments.Result

// QuickOptions returns a small, fast configuration (12 networks, 4-hour
// probe snapshot): seconds to generate, suitable for tests and examples.
func QuickOptions(seed uint64) Options { return synth.Quick(seed) }

// ReferenceOptions returns the thesis-scale configuration: the
// 110-network fleet with a 24-hour probe snapshot and 11-hour client
// snapshot. Generation takes on the order of a minute and the dataset
// occupies a few hundred MB in memory.
func ReferenceOptions(seed uint64) Options { return synth.Reference(seed) }

// GenerateFleet synthesizes a dataset. Equal options (including seed)
// produce byte-identical fleets.
func GenerateFleet(opts Options) (*Fleet, error) { return synth.Generate(opts) }

// NewAnalysis prepares a fleet for experiment runs.
func NewAnalysis(f *Fleet) *Analysis { return experiments.NewContext(f) }

// ExperimentIDs lists every reproducible table/figure ID in paper order.
func ExperimentIDs() []string { return experiments.IDs() }

// WriteFleet serializes a fleet in the JSON-lines dataset format.
func WriteFleet(w io.Writer, f *Fleet) error { return dataset.Write(w, f) }

// WriteFleetBinary serializes a fleet in the compact binary format, which
// is several times smaller than JSON lines; prefer it for reference-scale
// datasets.
func WriteFleetBinary(w io.Writer, f *Fleet) error { return wire.Write(w, f) }

// ReadFleet parses a fleet in either supported format, sniffing the
// binary format's magic.
func ReadFleet(r io.Reader) (*Fleet, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head, err := br.Peek(len(wire.Magic))
	if err != nil {
		return nil, fmt.Errorf("meshlab: %w", err)
	}
	if bytes.Equal(head, wire.Magic[:]) {
		return wire.Read(br)
	}
	return dataset.Read(br)
}

// SaveFleet writes a fleet to a file: the binary format when the path
// ends in ".bin", JSON lines otherwise.
func SaveFleet(path string, f *Fleet) error {
	file, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("meshlab: %w", err)
	}
	defer file.Close()
	write := dataset.Write
	if strings.HasSuffix(path, ".bin") {
		write = wire.Write
	}
	if err := write(file, f); err != nil {
		return err
	}
	return file.Close()
}

// LoadFleet reads a fleet from a file in either format.
func LoadFleet(path string) (*Fleet, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("meshlab: %w", err)
	}
	defer file.Close()
	return ReadFleet(file)
}

// LoadOrGenerateFleet returns the fleet for opts, using path as a dataset
// cache so synthesis is paid at most once per (seed, config). A file at
// path is loaded (format auto-detected by magic) and accepted when its
// metadata — seed, probe duration and cadence, client snapshot length —
// matches what Generate would stamp for opts, its client data presence
// matches opts.SkipClients, and its network population matches a cheap
// layout-only regeneration of the fleet topology (synth.MatchesTopology),
// so a changed fleet configuration invalidates even when the metadata
// coincides. Anything else (missing file, unreadable format, mismatched
// seed or config) triggers a fresh synthesis whose result is written back
// to path in the compact binary format. The returned bool reports whether
// the cache was hit.
//
// Options the file format cannot record — a RadioParams override, a
// non-default probe aggregation depth, or client-mixture tuning — bypass
// the cache entirely (see synth.Options.CacheValidatable): generating is
// always correct, serving a false hit never is.
func LoadOrGenerateFleet(path string, opts Options) (*Fleet, bool, error) {
	if !opts.CacheValidatable() {
		f, err := GenerateFleet(opts)
		return f, false, err
	}
	if f, err := LoadFleet(path); err == nil {
		if f.Meta == opts.Meta() && opts.SkipClients == (len(f.Clients) == 0) &&
			synth.MatchesTopology(f, opts) {
			return f, true, nil
		}
	}
	// Claim a temp file next to the cache path before synthesizing, so an
	// unwritable location fails in milliseconds instead of after minutes
	// of generation; the final rename is atomic, so an interrupt mid-run
	// leaves any previous cache intact and concurrent readers never see a
	// torn file. A directory at path would pass the temp-file probe but
	// fail the rename after synthesis, so reject it up front too.
	if info, err := os.Stat(path); err == nil && info.IsDir() {
		return nil, false, fmt.Errorf("meshlab: dataset cache: %s is a directory", path)
	}
	dir, base := filepath.Split(path)
	if dir == "" {
		// A bare filename must stage its temp file in the same (current)
		// directory — CreateTemp("") would fall back to the system temp
		// dir, where the final rename can cross filesystems.
		dir = "."
	}
	// Probe writability with a throwaway file, but create the real temp
	// only after synthesis succeeds: a crash or kill during the
	// minutes-long generation then cannot leak a stale multi-hundred-MB
	// .tmp file next to the cache.
	probe, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return nil, false, fmt.Errorf("meshlab: dataset cache: %w", err)
	}
	probe.Close()
	os.Remove(probe.Name())
	f, err := GenerateFleet(opts)
	if err != nil {
		return nil, false, err
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return nil, false, fmt.Errorf("meshlab: dataset cache: %w", err)
	}
	if err := wire.Write(tmp, f); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, false, fmt.Errorf("meshlab: dataset cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return nil, false, fmt.Errorf("meshlab: dataset cache: %w", err)
	}
	// CreateTemp opens 0600; give the cache the usual data-file mode so
	// other users of a shared fixture can read it, like SaveFleet output.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return nil, false, fmt.Errorf("meshlab: dataset cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return nil, false, fmt.Errorf("meshlab: dataset cache: %w", err)
	}
	return f, false, nil
}
