// Package meshlab reproduces the measurement study "Measurement and
// Analysis of Real-World 802.11 Mesh Networks" (LaCurts, MIT, 2010; the
// thesis version of the IMC 2010 paper by LaCurts & Balakrishnan).
//
// The original study analyzed 24 hours of inter-AP probe data from 1407
// APs in 110 production Meraki mesh networks plus an 11-hour client
// association snapshot. That data is proprietary, so meshlab regenerates
// its statistical structure from a calibrated physical model (the
// internal/radio and internal/synth packages) and re-implements the full
// analysis pipeline:
//
//   - §4 SNR-based bit rate adaptation: look-up tables at four training
//     scopes, throughput penalties, online table strategies.
//   - §5 opportunistic routing: ETX1/ETX2 shortest paths versus an
//     idealized ExOR cost recursion.
//   - §6 hidden triples and rate-dependent range.
//   - §7 client mobility: prevalence and persistence.
//
// The typical flow is: generate (or load) a Fleet, wrap it in an Analysis,
// and run experiments by their paper artifact ID:
//
//	fleet, err := meshlab.GenerateFleet(meshlab.QuickOptions(42))
//	...
//	a := meshlab.NewAnalysis(fleet)
//	res, err := a.Run("fig5.1")
//	fmt.Print(res.Format())
//
// The full suite can run serially (a.RunAll) or fanned across a worker
// pool (a.RunAllParallel(0) uses GOMAXPROCS workers); both produce the
// same results in the same paper order — the analysis context memoizes
// derived data per key, so execution order never changes a table. See
// also PERF.md for the optimization inventory and benchmarks.
//
// Every table and figure of the thesis's evaluation has a runner; see
// ExperimentIDs and EXPERIMENTS.md.
package meshlab

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"

	"meshlab/internal/dataset"
	"meshlab/internal/experiments"
	"meshlab/internal/synth"
	"meshlab/internal/wire"
)

// Fleet is a synthetic dataset: per-network probe data (§3.1) and
// aggregate client data (§3.2).
type Fleet = dataset.Fleet

// Options configures fleet generation; see QuickOptions and
// ReferenceOptions for calibrated presets.
type Options = synth.Options

// Analysis wraps a fleet with memoized derived state and runs experiments
// against it. Run, RunAll, and RunAllParallel are safe for concurrent use:
// memoization is sharded per derived value, so parallel experiments only
// block each other when they need the same computation.
type Analysis = experiments.Context

// Result is one regenerated table or figure.
type Result = experiments.Result

// QuickOptions returns a small, fast configuration (12 networks, 4-hour
// probe snapshot): seconds to generate, suitable for tests and examples.
func QuickOptions(seed uint64) Options { return synth.Quick(seed) }

// ReferenceOptions returns the thesis-scale configuration: the
// 110-network fleet with a 24-hour probe snapshot and 11-hour client
// snapshot. Generation takes on the order of a minute and the dataset
// occupies a few hundred MB in memory.
func ReferenceOptions(seed uint64) Options { return synth.Reference(seed) }

// GenerateFleet synthesizes a dataset. Equal options (including seed)
// produce byte-identical fleets.
func GenerateFleet(opts Options) (*Fleet, error) { return synth.Generate(opts) }

// NewAnalysis prepares a fleet for experiment runs.
func NewAnalysis(f *Fleet) *Analysis { return experiments.NewContext(f) }

// ExperimentIDs lists every reproducible table/figure ID in paper order.
func ExperimentIDs() []string { return experiments.IDs() }

// WriteFleet serializes a fleet in the JSON-lines dataset format.
func WriteFleet(w io.Writer, f *Fleet) error { return dataset.Write(w, f) }

// WriteFleetBinary serializes a fleet in the compact binary format, which
// is several times smaller than JSON lines; prefer it for reference-scale
// datasets.
func WriteFleetBinary(w io.Writer, f *Fleet) error { return wire.Write(w, f) }

// ReadFleet parses a fleet in either supported format, sniffing the
// binary format's magic.
func ReadFleet(r io.Reader) (*Fleet, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head, err := br.Peek(len(wire.Magic))
	if err != nil {
		return nil, fmt.Errorf("meshlab: %w", err)
	}
	if bytes.Equal(head, wire.Magic[:]) {
		return wire.Read(br)
	}
	return dataset.Read(br)
}

// SaveFleet writes a fleet to a file: the binary format when the path
// ends in ".bin", JSON lines otherwise.
func SaveFleet(path string, f *Fleet) error {
	file, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("meshlab: %w", err)
	}
	defer file.Close()
	write := dataset.Write
	if strings.HasSuffix(path, ".bin") {
		write = wire.Write
	}
	if err := write(file, f); err != nil {
		return err
	}
	return file.Close()
}

// LoadFleet reads a fleet from a file in either format.
func LoadFleet(path string) (*Fleet, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("meshlab: %w", err)
	}
	defer file.Close()
	return ReadFleet(file)
}
