module meshlab

go 1.24
