// Scenario end-to-end tests: declare a built-in scenario, synthesize its
// dataset, run the full streamed suite through the polling e2e harness
// in three variants (streamed, sharded, kill-and-resume), and pin every
// scenario's report against a checked-in golden. External test package:
// the harness imports meshlab, so an internal test would be a cycle.
package meshlab_test

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"meshlab"
	"meshlab/internal/atomicio"
	"meshlab/internal/scenario"
	"meshlab/internal/scenario/e2e"
)

var updateGoldens = flag.Bool("update", false, "rewrite testdata/scenarios goldens from the current run")

// scenarioGoldenPath is where a scenario's pinned report lives.
func scenarioGoldenPath(name string) string {
	return filepath.Join("testdata", "scenarios", name+".golden")
}

// TestScenarioE2EGoldens runs every built-in scenario (except the
// reference, which is guardrail-scale) through all three run variants,
// requires the three converged reports to be byte-identical, and
// compares them against the scenario's golden. Run with -update to
// regenerate goldens after an intentional change — the embedded spec
// sha256 keeps a stale golden from going unnoticed (scripts/
// check_goldens.sh).
func TestScenarioE2EGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite per scenario and variant")
	}
	for _, name := range scenario.Names() {
		if name == "reference" {
			continue // covered at reference scale by the guardrail workflow
		}
		t.Run(name, func(t *testing.T) {
			sp, err := scenario.Builtin(name)
			if err != nil {
				t.Fatal(err)
			}
			h := e2e.New(t.TempDir())
			h.Workers = 2
			dataset, err := h.Synthesize(sp)
			if err != nil {
				t.Fatal(err)
			}
			variants := []e2e.Variant{
				e2e.Streamed(),
				e2e.Sharded(3),
				e2e.CheckpointResume(3, "pre-rename"),
			}
			runs := make([]*e2e.Run, len(variants))
			for i, v := range variants {
				runs[i] = h.Start(sp, dataset, v)
			}
			reports := make([][]byte, len(runs))
			for i, r := range runs {
				reports[i], err = h.WaitConverged(r)
				if err != nil {
					t.Fatal(err)
				}
			}
			for i := 1; i < len(reports); i++ {
				if string(reports[i]) != string(reports[0]) {
					t.Fatalf("variant %s report diverges from %s:\n%s\nvs\n%s",
						runs[i].Variant, runs[0].Variant, reports[i], reports[0])
				}
			}
			golden := scenarioGoldenPath(name)
			if *updateGoldens {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := atomicio.WriteBytes(golden, 0o644, reports[0]); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", golden)
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run `go test -run TestScenarioE2EGoldens -update .`): %v", err)
			}
			if string(reports[0]) != string(want) {
				t.Fatalf("%s: converged report differs from golden %s\n--- got ---\n%s\n--- want ---\n%s",
					name, golden, reports[0], want)
			}
		})
	}
}

// TestScenarioStaleCacheDetected pins the cache-identity contract: a
// dataset generated from one scenario must not silently stand in for a
// different scenario, even when the generation metadata (seed,
// durations) is identical and only the fleet layout differs.
func TestScenarioStaleCacheDetected(t *testing.T) {
	mkSpec := func(t *testing.T, extra string) *scenario.Spec {
		t.Helper()
		sp, err := scenario.Parse([]byte(`{
			"version": 1, "name": "cachecheck", "seed": 3,
			"fleet": {
				"networks": 4,
				"env_mix": {"indoor": 2, "outdoor": 1, "mixed": 1},
				"band_mix": {"bg": 3, "n": 1},
				"size": {"min": 3, "max": 8, "log_mean": 1.2, "log_std": 0.4}`+extra+`
			},
			"probe": {"duration_s": 900, "interval_s": 300}
		}`), "inline")
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	spA := mkSpec(t, "")
	spB := mkSpec(t, `, "spacing_scale": 0.5`) // same meta, different layout

	optsA, optsB := spA.Options(), spB.Options()
	if optsA.Meta() != optsB.Meta() {
		t.Fatal("test premise broken: the two scenarios should share generation metadata")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "a.bin")
	f, err := meshlab.GenerateFleet(optsA)
	if err != nil {
		t.Fatal(err)
	}
	if err := meshlab.SaveFleetWithSamples(path, f); err != nil {
		t.Fatal(err)
	}

	// Streaming with validation: the matching scenario passes, the
	// stale one aborts with ErrCacheMismatch.
	if _, _, err := meshlab.StreamFleet(path, meshlab.StreamOptions{Validate: &optsA}); err != nil {
		t.Fatalf("matching scenario failed validation: %v", err)
	}
	if _, _, err := meshlab.StreamFleet(path, meshlab.StreamOptions{Validate: &optsB}); !errors.Is(err, meshlab.ErrCacheMismatch) {
		t.Fatalf("stale dataset passed validation for a different scenario: %v", err)
	}

	// The load-or-generate cache path: a hit for the generating
	// scenario, a regeneration (not a silent reuse) for the other.
	if _, hit, err := meshlab.LoadOrGenerateFleet(path, optsA); err != nil || !hit {
		t.Fatalf("matching scenario should hit the cache (hit=%v, err=%v)", hit, err)
	}
	if _, hit, err := meshlab.LoadOrGenerateFleet(path, optsB); err != nil || hit {
		t.Fatalf("stale cache should be regenerated, not reused (hit=%v, err=%v)", hit, err)
	}
	// After the miss the file holds scenario B's fleet, so B now hits
	// and A must in turn regenerate.
	if _, hit, err := meshlab.LoadOrGenerateFleet(path, optsB); err != nil || !hit {
		t.Fatalf("regenerated cache should now serve scenario B (hit=%v, err=%v)", hit, err)
	}
}
