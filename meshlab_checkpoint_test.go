package meshlab

// Public-API tests for the checkpoint/resume layer: the kill-and-resume
// oracle (a run killed at every durable-write phase, then resumed by a
// fresh ShardedStream call, must finalize byte-identical to an
// uninterrupted run), generation fallback past a torn newest
// checkpoint, the identity-mismatch usage error, and a reference-scale
// smoke gated behind MESHLAB_REFERENCE_SCALE for the CI guardrail.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"meshlab/internal/faultfs"
	"meshlab/internal/shard"
)

// ckOpts is the checkpointed-run configuration the tests share: a tight
// checkpoint cadence so even the 12-network quick fleet crosses several
// durable writes per shard.
func ckOpts(shards int, dir string) ShardOptions {
	return ShardOptions{
		Shards: shards, Workers: 2, RetryBase: fastRetry,
		CheckpointDir: dir, CheckpointEvery: 2,
	}
}

// baselineFormats streams path uninterrupted and returns each result's
// formatted table — the byte-identical target every resumed run must hit.
func baselineFormats(t *testing.T, path string) []string {
	t.Helper()
	want, _, err := StreamFleet(path, StreamOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(want))
	for i := range want {
		out[i] = want[i].Format()
	}
	return out
}

// shardNotes flattens every shard's checkpoint notes for substring
// assertions.
func shardNotes(res *ShardResult) string {
	var b strings.Builder
	for _, r := range res.Manifest.Shards {
		for _, n := range r.Checkpoint {
			b.WriteString(n)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestCheckpointKillAndResume is the tentpole oracle: for shard counts
// {1, 3}, files with and without the flat-sample section, and a kill
// injected at every durable-write phase, the first process must die
// with the injected error and a fresh process started with Resume must
// finalize byte-identical to an uninterrupted run. Skip:1 leaves the
// first checkpoint durable so every resume exercises a real seek — and
// the mid-rename phase additionally proves generation fallback: the
// torn newest file is rejected by checksum and the previous generation
// (or a fresh start) is used instead, never a panic, never wrong bytes.
func TestCheckpointKillAndResume(t *testing.T) {
	_, sampled, plain := saveShardFixture(t, 61)
	phases := []string{"mid-snapshot", "post-temp-write", "pre-rename", "mid-rename"}
	for _, fixture := range []struct{ name, path string }{
		{"sampled", sampled},
		{"plain", plain},
	} {
		want := baselineFormats(t, fixture.path)
		for _, shards := range []int{1, 3} {
			for _, phase := range phases {
				t.Run(fmt.Sprintf("%s/shards=%d/%s", fixture.name, shards, phase), func(t *testing.T) {
					dir := t.TempDir()
					plan := &faultfs.CrashPlan{KillAt: phase, Skip: 1, Torn: 3}
					opts := ckOpts(shards, dir)
					opts.CheckpointHook = plan.Hook
					_, err := ShardedStream(context.Background(), fixture.path, opts)
					if !errors.Is(err, faultfs.ErrKilled) {
						t.Fatalf("killed run: got %v, want ErrKilled", err)
					}
					if !plan.Fired() {
						t.Fatal("crash plan never fired: the run took fewer checkpoints than the scenario assumes")
					}
					if !errors.Is(err, shard.ErrCheckpoint) {
						t.Fatalf("kill not classified as a checkpoint failure: %v", err)
					}
					if code := ShardExitCode(err); code != 1 {
						t.Fatalf("exit code %d for a checkpoint-write kill, want 1", code)
					}

					// The "fresh process": same checkpoint dir, Resume set,
					// no fault hook.
					opts = ckOpts(shards, dir)
					opts.Resume = true
					res, err := ShardedStream(context.Background(), fixture.path, opts)
					if err != nil {
						t.Fatalf("resume: %v", err)
					}
					if len(res.Results) != len(want) {
						t.Fatalf("%d results after resume, want %d", len(res.Results), len(want))
					}
					for i := range want {
						if got := res.Results[i].Format(); got != want[i] {
							t.Fatalf("%s diverged after kill-and-resume:\n--- resumed ---\n%s\n--- uninterrupted ---\n%s",
								res.Results[i].ID, got, want[i])
						}
					}
					if !res.Manifest.CheckpointNotes() {
						t.Fatalf("resumed run reported no checkpoint activity:\n%s", res.Manifest.Format())
					}
					notes := shardNotes(res)
					if !strings.Contains(notes, "resumed from checkpoint") {
						t.Fatalf("no resume note in manifest:\n%s", notes)
					}
					if phase == "mid-rename" && !strings.Contains(notes, "falling back") {
						t.Fatalf("torn newest generation not reported as skipped:\n%s", notes)
					}
				})
			}
		}
	}
}

// TestCheckpointFirstGenerationTorn covers the fallback floor: when the
// very first checkpoint is the one torn mid-rename, there is no earlier
// generation to fall back to — the resume must report the corrupt file
// and start fresh, still byte-identical.
func TestCheckpointFirstGenerationTorn(t *testing.T) {
	_, sampled, _ := saveShardFixture(t, 62)
	want := baselineFormats(t, sampled)
	dir := t.TempDir()
	plan := &faultfs.CrashPlan{KillAt: "mid-rename", TornXOR: 0x40}
	opts := ckOpts(1, dir)
	opts.CheckpointHook = plan.Hook
	if _, err := ShardedStream(context.Background(), sampled, opts); !errors.Is(err, faultfs.ErrKilled) {
		t.Fatalf("got %v, want ErrKilled", err)
	}
	opts = ckOpts(1, dir)
	opts.Resume = true
	res, err := ShardedStream(context.Background(), sampled, opts)
	if err != nil {
		t.Fatalf("resume past a torn first generation: %v", err)
	}
	for i := range want {
		if res.Results[i].Format() != want[i] {
			t.Fatalf("%s diverged after torn-first-generation resume", res.Results[i].ID)
		}
	}
	notes := shardNotes(res)
	if !strings.Contains(notes, "falling back") {
		t.Fatalf("corrupt generation not reported:\n%s", notes)
	}
	if strings.Contains(notes, "resumed from checkpoint") {
		t.Fatalf("nothing durable existed, yet the run claims a resume:\n%s", notes)
	}
}

// TestCheckpointRetryResumesInProcess: a transient read fault after the
// first durable checkpoint must not force the retry attempt back to
// network zero — the attempt reloads its own shard's checkpoint (no
// Resume flag needed: in-process retries always trust their own saves)
// and the final results stay byte-identical.
func TestCheckpointRetryResumesInProcess(t *testing.T) {
	_, sampled, _ := saveShardFixture(t, 63)
	want := baselineFormats(t, sampled)
	plan := buildPlan(t, sampled)
	// Deep inside the sample payload, past every earlier pass: the plan
	// scan's buffered read covers the section start, and the network
	// walk's 1 MiB read-ahead can burn a fault up to that far past the
	// walk's end without ever surfacing the parked error (the walk stops
	// consuming at its last record). Only the sample stream itself reads
	// this deep.
	inj := faultfs.New(faultfs.Fault{
		Kind: faultfs.Transient, Offset: plan.SamplesOffset + 3<<20, Count: 1,
	})
	opts := ckOpts(1, t.TempDir())
	opts.MaxRetries = 2
	opts.Open = inj.WrapOpen(func(p string) (io.ReadSeekCloser, error) { return os.Open(p) })
	res, err := ShardedStream(context.Background(), sampled, opts)
	if err != nil {
		t.Fatalf("transient within budget failed the run: %v", err)
	}
	if got := inj.Fired(0); got != 1 {
		t.Fatalf("injected transient fired %d times, want 1", got)
	}
	if res.Manifest.Shards[0].Attempts != 2 {
		t.Fatalf("%d attempts, want 2", res.Manifest.Shards[0].Attempts)
	}
	for i := range want {
		if res.Results[i].Format() != want[i] {
			t.Fatalf("%s diverged after an in-process checkpoint resume", res.Results[i].ID)
		}
	}
	if !strings.Contains(shardNotes(res), "resumed from checkpoint") {
		t.Fatalf("retry did not resume from its own checkpoint:\n%s", shardNotes(res))
	}
}

// TestCheckpointResumeIdentity pins the identity contract: resuming the
// same dataset and layout after completion is legal (and byte-identical
// — the tail past the last checkpoint is simply re-streamed), while a
// different dataset, or a different shard layout over the same dataset,
// is ErrCheckpointMismatch — fatal even under AllowPartial, because a
// blended resume would silently merge two different runs.
func TestCheckpointResumeIdentity(t *testing.T) {
	_, sampled, _ := saveShardFixture(t, 64)
	_, other, _ := saveShardFixture(t, 65)
	want := baselineFormats(t, sampled)
	dir := t.TempDir()
	if _, err := ShardedStream(context.Background(), sampled, ckOpts(2, dir)); err != nil {
		t.Fatal(err)
	}

	opts := ckOpts(2, dir)
	opts.Resume = true
	res, err := ShardedStream(context.Background(), sampled, opts)
	if err != nil {
		t.Fatalf("resume after completion: %v", err)
	}
	for i := range want {
		if res.Results[i].Format() != want[i] {
			t.Fatalf("%s diverged on a post-completion resume", res.Results[i].ID)
		}
	}

	opts = ckOpts(2, dir)
	opts.Resume = true
	if _, err := ShardedStream(context.Background(), other, opts); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("different dataset resumed: got %v, want ErrCheckpointMismatch", err)
	} else if code := ShardExitCode(err); code == 2 {
		// The 2 mapping belongs to the CLIs (usage error); the library
		// classification must stay a plain failure so embedders decide.
		t.Fatalf("library exit classification claimed usage error")
	}

	opts.AllowPartial = true
	if _, err := ShardedStream(context.Background(), other, opts); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("AllowPartial masked the mismatch: got %v", err)
	}

	opts = ckOpts(3, dir)
	opts.Resume = true
	if _, err := ShardedStream(context.Background(), sampled, opts); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("different shard layout resumed: got %v, want ErrCheckpointMismatch", err)
	}
}

// TestCheckpointKillAndResumeReferenceScale is the guardrail-scale
// smoke: the thesis-scale reference fleet, one injected kill past
// several durable checkpoints, one resume, byte-identical results.
// Gated behind MESHLAB_REFERENCE_SCALE=1 (the run takes minutes);
// .github/workflows/guardrail.yml sets it and reuses its cached
// dataset via MESHLAB_REFERENCE_DATA.
func TestCheckpointKillAndResumeReferenceScale(t *testing.T) {
	if os.Getenv("MESHLAB_REFERENCE_SCALE") == "" {
		t.Skip("set MESHLAB_REFERENCE_SCALE=1 to run the reference-scale kill-and-resume smoke")
	}
	path := os.Getenv("MESHLAB_REFERENCE_DATA")
	if path == "" {
		fleet, err := GenerateFleet(ReferenceOptions(42))
		if err != nil {
			t.Fatal(err)
		}
		path = filepath.Join(t.TempDir(), "reference.bin")
		if err := SaveFleetWithSamples(path, fleet); err != nil {
			t.Fatal(err)
		}
	}
	want := baselineFormats(t, path)
	dir := t.TempDir()
	plan := &faultfs.CrashPlan{KillAt: "mid-rename", Skip: 3, Torn: 7}
	opts := ShardOptions{
		Shards: 4, RetryBase: fastRetry,
		CheckpointDir: dir, CheckpointEvery: 4, CheckpointHook: plan.Hook,
	}
	if _, err := ShardedStream(context.Background(), path, opts); !errors.Is(err, faultfs.ErrKilled) {
		t.Fatalf("got %v, want ErrKilled", err)
	}
	opts.CheckpointHook = nil
	opts.Resume = true
	res, err := ShardedStream(context.Background(), path, opts)
	if err != nil {
		t.Fatalf("reference-scale resume: %v", err)
	}
	for i := range want {
		if res.Results[i].Format() != want[i] {
			t.Fatalf("%s diverged at reference scale after kill-and-resume", res.Results[i].ID)
		}
	}
	if !strings.Contains(shardNotes(res), "resumed from checkpoint") {
		t.Fatalf("reference-scale resume left no note:\n%s", shardNotes(res))
	}
}
