// Package scenarios holds the built-in scenario catalog: the checked-in,
// versioned scenario spec files (*.json) that internal/scenario compiles
// into synth.Options. The files in this directory are the single source
// of truth for the named scenarios the CLIs accept via -scenario; the
// registry reads them from the embedded filesystem so binaries carry the
// catalog with them. See docs/SCENARIOS.md for the spec schema and the
// golden-report workflow that pins each scenario's analysis output.
package scenarios

import "embed"

// FS embeds every checked-in scenario spec.
//
//go:embed *.json
var FS embed.FS
