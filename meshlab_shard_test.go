package meshlab

// Tests for the fault-tolerant sharded streaming suite: the
// shard-vs-whole byte-identical oracle at several shard counts and
// worker budgets, the transient-retry path under deterministic fault
// injection, and corrupt-shard quarantine with a degraded-mode manifest.
// The fault-injection tests double as the CI guardrail's smoke
// (run with -race by .github/workflows/guardrail.yml).

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"meshlab/internal/dataset"
	"meshlab/internal/faultfs"
	"meshlab/internal/probe"
	"meshlab/internal/shard"
	"meshlab/internal/topology"
	"meshlab/internal/wire"
)

// fastRetry keeps backoff sleeps out of the test budget.
const fastRetry = time.Millisecond

// saveShardFixture writes a quick fleet twice: with and without the
// flat-sample section.
func saveShardFixture(t *testing.T, seed uint64) (fleet *Fleet, sampled, plain string) {
	t.Helper()
	fleet, err := GenerateFleet(QuickOptions(seed))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	sampled = filepath.Join(dir, "sampled.bin")
	if err := SaveFleetWithSamples(sampled, fleet); err != nil {
		t.Fatal(err)
	}
	plain = filepath.Join(dir, "plain.bin")
	if err := SaveFleet(plain, fleet); err != nil {
		t.Fatal(err)
	}
	return fleet, sampled, plain
}

// TestShardedStreamMatchesStreamFleet is the shard-vs-whole oracle: at
// any shard count and worker budget, over files with and without the
// flat-sample section, the merged sharded run must emit results
// byte-identical to the single-pass streaming suite.
func TestShardedStreamMatchesStreamFleet(t *testing.T) {
	fleet, sampled, plain := saveShardFixture(t, 51)
	for _, path := range []string{sampled, plain} {
		want, wantSum, err := StreamFleet(path, StreamOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 3, 5} {
			for _, workers := range []int{1, 4} {
				res, err := ShardedStream(context.Background(), path, ShardOptions{
					Shards: shards, Workers: workers, MaxRetries: 0,
				})
				if err != nil {
					t.Fatalf("%s shards=%d workers=%d: %v", path, shards, workers, err)
				}
				if len(res.Results) != len(want) {
					t.Fatalf("%d results vs %d", len(res.Results), len(want))
				}
				for i := range want {
					if g, w := res.Results[i].Format(), want[i].Format(); g != w {
						t.Fatalf("%s shards=%d workers=%d: %s diverged:\n--- sharded ---\n%s\n--- whole ---\n%s",
							path, shards, workers, want[i].ID, g, w)
					}
				}
				if res.Manifest.Degraded || len(res.Manifest.Skipped) != 0 {
					t.Fatalf("healthy run reported degraded: %s", res.Manifest.Format())
				}
				if res.Networks != len(fleet.Networks) || len(res.Manifest.Observed) != len(fleet.Networks) {
					t.Fatalf("observed %d/%d networks of %d", res.Networks, len(res.Manifest.Observed), len(fleet.Networks))
				}
				if res.NetworksBG != wantSum.NetworksBG || res.NetworksN != wantSum.NetworksN || res.ProbeSets != wantSum.ProbeSets {
					t.Fatalf("tallies %d/%d/%d vs whole-run %d/%d/%d",
						res.NetworksBG, res.NetworksN, res.ProbeSets,
						wantSum.NetworksBG, wantSum.NetworksN, wantSum.ProbeSets)
				}
				if res.FlatSamples != wantSum.FlatSamples {
					t.Fatalf("FlatSamples %v vs %v", res.FlatSamples, wantSum.FlatSamples)
				}
			}
		}
	}
}

// TestShardedStreamSplitDualBandNetwork pins the regression where a
// shard boundary falls between a dual-band network's adjacent bg and n
// dataset entries: with bare-name sample filtering both shards claimed
// both of the network's sample groups and double-counted them. The
// fleet is all dual-band (10 entries from 5 networks), so 3 shards
// split at entry 3 — inside the pair of network 1 — deterministically.
func TestShardedStreamSplitDualBandNetwork(t *testing.T) {
	opts := Options{
		Seed: 17,
		Fleet: topology.FleetConfig{
			NumNetworks: 5, NumIndoor: 5,
			NumN: 5, NumBoth: 5,
			MinSize: 3, MaxSize: 8, SizeLogMean: 1.2, SizeLogStd: 0.4,
		},
		Probe: probe.Config{Duration: 900, ReportInterval: 300},
	}
	fleet, err := GenerateFleet(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet.Networks) != 10 {
		t.Fatalf("fixture holds %d dataset entries, want 10", len(fleet.Networks))
	}
	path := filepath.Join(t.TempDir(), "both.bin")
	if err := SaveFleetWithSamples(path, fleet); err != nil {
		t.Fatal(err)
	}
	want, _, err := StreamFleet(path, StreamOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ShardedStream(context.Background(), path, ShardOptions{Shards: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if g, w := res.Results[i].Format(), want[i].Format(); g != w {
			t.Fatalf("%s diverged across a split dual-band pair:\n--- sharded ---\n%s\n--- whole ---\n%s",
				want[i].ID, g, w)
		}
	}
}

// splitFleetDir writes a quick fleet as parts contiguous per-shard
// files under a fresh directory, plus one whole-file baseline carrying
// the same networks in the same order and the same client-section
// order (each client dataset travels with its network's chunk, so the
// concatenation in file order is exactly the baseline's section).
func splitFleetDir(t *testing.T, seed uint64, parts int) (shardDir, wholePath string, networks int) {
	t.Helper()
	fleet, err := GenerateFleet(QuickOptions(seed))
	if err != nil {
		t.Fatal(err)
	}
	n := len(fleet.Networks)
	if n < parts {
		t.Fatalf("fixture too small: %d networks for %d parts", n, parts)
	}
	dir := t.TempDir()
	shardDir = filepath.Join(dir, "shards")
	if err := os.Mkdir(shardDir, 0o755); err != nil {
		t.Fatal(err)
	}
	chunkOf := map[string]int{}
	var whole Fleet
	whole.Meta = fleet.Meta
	for p := 0; p < parts; p++ {
		sub := &Fleet{Meta: fleet.Meta, Networks: fleet.Networks[p*n/parts : (p+1)*n/parts]}
		for _, nd := range sub.Networks {
			chunkOf[nd.Info.Name] = p
		}
		whole.Networks = append(whole.Networks, sub.Networks...)
		for _, cd := range fleet.Clients {
			if chunkOf[cd.Network] == p {
				sub.Clients = append(sub.Clients, cd)
				whole.Clients = append(whole.Clients, cd)
			}
		}
		if err := SaveFleetWithSamples(filepath.Join(shardDir, fmt.Sprintf("part-%02d.bin", p)), sub); err != nil {
			t.Fatal(err)
		}
	}
	wholePath = filepath.Join(dir, "whole.bin")
	if err := SaveFleetWithSamples(wholePath, &whole); err != nil {
		t.Fatal(err)
	}
	return shardDir, wholePath, n
}

// TestShardedStreamDirectory: a directory of per-shard files merges —
// in file-name order — into results byte-identical to one whole file
// carrying the same networks and the same client-section order.
func TestShardedStreamDirectory(t *testing.T) {
	const parts = 3
	shardDir, wholePath, n := splitFleetDir(t, 52, parts)
	want, _, err := StreamFleet(wholePath, StreamOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ShardedStream(context.Background(), shardDir, ShardOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.Results[i].Format() != want[i].Format() {
			t.Fatalf("%s diverges between the shard directory and the whole file", want[i].ID)
		}
	}
	if len(res.Manifest.Shards) != parts || res.Networks != n {
		t.Fatalf("manifest: %d shards, %d networks", len(res.Manifest.Shards), res.Networks)
	}
}

// TestShardedStreamRetriesTransients: transient I/O faults must be
// retried past on fresh handles, and the final results must stay
// byte-identical to the fault-free run. Directory mode pins every read
// — including each shard's plan scan — inside a shard attempt, so the
// injected failures are charged to shard retries, not to the shared
// single-file plan pass.
func TestShardedStreamRetriesTransients(t *testing.T) {
	const parts = 3
	shardDir, wholePath, _ := splitFleetDir(t, 53, parts)
	want, _, err := StreamFleet(wholePath, StreamOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Offset 16 sits in every part file's meta block, so whichever shard
	// reads next absorbs the fault; two firings cost two attempts total.
	inj := faultfs.New(faultfs.Fault{Kind: faultfs.Transient, Offset: 16, Count: 2})
	res, err := ShardedStream(context.Background(), shardDir, ShardOptions{
		Workers: 2, MaxRetries: 3, RetryBase: fastRetry,
		Open: inj.WrapOpen(func(p string) (io.ReadSeekCloser, error) { return os.Open(p) }),
	})
	if err != nil {
		t.Fatalf("transients within budget must not fail the run: %v", err)
	}
	if got := inj.Fired(0); got != 2 {
		t.Fatalf("injected transient fired %d times, want 2", got)
	}
	retried, attempts := 0, 0
	for _, r := range res.Manifest.Shards {
		attempts += r.Attempts
		if r.Attempts > 1 {
			retried++
		}
		if r.State != shard.OK {
			t.Fatalf("shard %d ended %s: %v", r.Index, r.State, r.Err)
		}
	}
	if retried == 0 {
		t.Fatal("no shard reported a retry despite two injected transients")
	}
	if attempts != parts+2 {
		t.Fatalf("%d total attempts across %d shards, want %d", attempts, parts, parts+2)
	}
	for i := range want {
		if res.Results[i].Format() != want[i].Format() {
			t.Fatalf("%s diverges after transient retries", want[i].ID)
		}
	}
}

// TestShardedStreamExhaustsTransients: a fault that outlives the retry
// budget fails the run with ErrExhausted (exit code 4), never silently.
func TestShardedStreamExhaustsTransients(t *testing.T) {
	_, sampled, _ := saveShardFixture(t, 53)
	plan := buildPlan(t, sampled)
	inj := faultfs.New(faultfs.Fault{
		Kind: faultfs.Transient, Offset: plan.SamplesOffset + 16, Count: 1 << 20,
	})
	_, err := ShardedStream(context.Background(), sampled, ShardOptions{
		Shards: 2, Workers: 2, MaxRetries: 1, RetryBase: fastRetry,
		Open: inj.WrapOpen(func(p string) (io.ReadSeekCloser, error) { return os.Open(p) }),
	})
	if !errors.Is(err, shard.ErrExhausted) {
		t.Fatalf("got %v, want ErrExhausted", err)
	}
	if code := ShardExitCode(err); code != 4 {
		t.Fatalf("exit code %d, want 4", code)
	}
	if !errors.Is(err, faultfs.ErrTransient) {
		t.Fatalf("root cause lost from the chain: %v", err)
	}
}

// TestShardedStreamQuarantinesCorrupt: a corrupt byte confined to one
// shard's sample rows quarantines exactly that shard. Without
// -allow-partial the run fails as corrupt input (exit code 3); with it,
// the run completes degraded and the manifest names the skipped network
// and the root-cause chain.
func TestShardedStreamQuarantinesCorrupt(t *testing.T) {
	_, sampled, _ := saveShardFixture(t, 54)
	net, poptOff := firstSampleRowPopt(t, sampled)
	// XOR 0x80 drives the row's optimal-rate index far out of range: a
	// validation failure only the owning shard's decode can hit.
	inj := faultfs.New(faultfs.Fault{Kind: faultfs.Corrupt, Offset: poptOff, XOR: 0x80})
	open := inj.WrapOpen(func(p string) (io.ReadSeekCloser, error) { return os.Open(p) })

	strict := ShardOptions{Shards: 3, Workers: 2, MaxRetries: 2, RetryBase: fastRetry, Open: open}
	_, err := ShardedStream(context.Background(), sampled, strict)
	if !errors.Is(err, shard.ErrCorruptShard) {
		t.Fatalf("got %v, want ErrCorruptShard", err)
	}
	if code := ShardExitCode(err); code != 3 {
		t.Fatalf("exit code %d, want 3", code)
	}

	partial := strict
	partial.AllowPartial = true
	res, err := ShardedStream(context.Background(), sampled, partial)
	if err != nil {
		t.Fatalf("-allow-partial should degrade, not fail: %v", err)
	}
	m := res.Manifest
	if !m.Degraded {
		t.Fatal("manifest not marked degraded")
	}
	skipped := false
	for _, name := range m.Skipped {
		if name == net {
			skipped = true
		}
	}
	if !skipped {
		t.Fatalf("corrupted network %s missing from skipped list %v", net, m.Skipped)
	}
	quarantined := 0
	for _, r := range m.Shards {
		if r.State != shard.Quarantined {
			continue
		}
		quarantined++
		if r.Attempts != 1 {
			t.Fatalf("corruption was retried (%d attempts)", r.Attempts)
		}
		if !wire.IsCorrupt(r.Err) {
			t.Fatalf("quarantine cause not classified corrupt: %v", r.Err)
		}
		var werr *wire.Error
		if !errors.As(r.Err, &werr) || werr.Section != "flat-sample" {
			t.Fatalf("quarantine cause lacks wire context: %v", r.Err)
		}
	}
	if quarantined != 1 {
		t.Fatalf("%d shards quarantined, want exactly 1:\n%s", quarantined, m.Format())
	}
	if got := m.Format(); got == "" {
		t.Fatal("empty manifest rendering")
	}
	if len(res.Results) == 0 {
		t.Fatal("degraded run produced no results")
	}
}

// buildPlan indexes a binary fleet file for the tests that need byte
// offsets.
func buildPlan(t *testing.T, path string) *wire.Plan {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	plan, err := wire.BuildPlan(f)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// firstSampleRowPopt locates the absolute offset of the optimal-rate
// byte in the first non-empty sample group's first row, plus the name of
// the network that owns it — the corruption target that stays invisible
// to planning and to every other shard.
func firstSampleRowPopt(t *testing.T, path string) (net string, off int64) {
	t.Helper()
	plan := buildPlan(t, path)
	if plan.SamplesOffset == 0 {
		t.Fatal("fixture has no flat-sample section")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Seek(plan.SamplesOffset, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(f)
	pos := plan.SamplesOffset
	read := func(n int) []byte {
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			t.Fatal(err)
		}
		pos += int64(n)
		return b
	}
	read(8) // section length
	nBands := int(read(1)[0])
	for b := 0; b < nBands; b++ {
		read(1) // band code
		nr := int(read(1)[0])
		nGroups := int(binary.LittleEndian.Uint32(read(4)))
		rowLen := int64(2 + 2 + 4 + 2 + 1 + 8 + nr*8)
		for g := 0; g < nGroups; g++ {
			nameLen := int(binary.LittleEndian.Uint16(read(2)))
			name := string(read(nameLen))
			count := int64(binary.LittleEndian.Uint32(read(4)))
			if count > 0 {
				return name, pos + 10 // from(2) to(2) t(4) snr(2) → popt
			}
			if _, err := br.Discard(int(count * rowLen)); err != nil {
				t.Fatal(err)
			}
			pos += count * rowLen
		}
	}
	t.Fatal("no non-empty sample group in fixture")
	return "", 0
}

// TestShardedStreamCancellation: a canceled context aborts the run
// between retry attempts instead of burning the backoff schedule.
func TestShardedStreamCancellation(t *testing.T) {
	_, sampled, _ := saveShardFixture(t, 53)
	plan := buildPlan(t, sampled)
	inj := faultfs.New(faultfs.Fault{
		Kind: faultfs.Transient, Offset: plan.SamplesOffset + 16, Count: 1 << 20,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ShardedStream(ctx, sampled, ShardOptions{
		Shards: 2, MaxRetries: 1 << 10, RetryBase: time.Hour,
		Open: inj.WrapOpen(func(p string) (io.ReadSeekCloser, error) { return os.Open(p) }),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestShardedStreamEmptyNetworks guards the degenerate shard math: a
// clientless, networkless file survives sharding (no zero shard count,
// no out-of-range resume) and fails finalize the same way the
// single-pass suite does — as an empty-data error, not as corrupt input
// or an exhausted retry budget.
func TestShardedStreamEmptyNetworks(t *testing.T) {
	empty := &Fleet{Meta: dataset.Meta{Seed: 1, ProbeDuration: 600, ProbeInterval: 300, ClientDuration: 900}}
	path := filepath.Join(t.TempDir(), "empty.bin")
	if err := SaveFleetWithSamples(path, empty); err != nil {
		t.Fatal(err)
	}
	_, _, wantErr := StreamFleet(path, StreamOptions{})
	if wantErr == nil {
		t.Fatal("expected the empty fleet to fail finalize in the single-pass suite")
	}
	_, err := ShardedStream(context.Background(), path, ShardOptions{Shards: 4})
	if err == nil {
		t.Fatal("sharded run of an empty fleet should fail finalize like the single-pass suite")
	}
	if errors.Is(err, shard.ErrCorruptShard) || errors.Is(err, shard.ErrExhausted) {
		t.Fatalf("empty data misclassified: %v", err)
	}
	if code := ShardExitCode(err); code != 1 {
		t.Fatalf("exit code %d for an empty-data failure, want 1", code)
	}
	if err.Error() != wantErr.Error() {
		t.Fatalf("sharded failure %q differs from single-pass %q", err, wantErr)
	}
}
